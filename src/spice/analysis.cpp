#include "spice/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <optional>

#include "common/error.hpp"
#include "common/matrix.hpp"
#include "common/metrics.hpp"
#include "common/sparse.hpp"
#include "common/trace.hpp"

namespace ivory::spice {

namespace {

// Row index of a non-ground node in the MNA system.
inline int nrow(NodeId n) { return n - 1; }

// The stamp helpers are generic over the accumulation target `M` — anything
// with add(row, col, value). Dense Matrix<T> and the sparse::SparseStamp
// triplet accumulator both qualify, so DC/transient assembly writes straight
// into sparse storage with no dense intermediate while AC keeps its dense
// complex matrix.

// Stamps a conductance between two nodes (either may be ground).
template <typename M, typename T>
void stamp_conductance(M& g, NodeId a, NodeId b, T gval) {
  if (a != kGround) g.add(static_cast<std::size_t>(nrow(a)), static_cast<std::size_t>(nrow(a)), gval);
  if (b != kGround) g.add(static_cast<std::size_t>(nrow(b)), static_cast<std::size_t>(nrow(b)), gval);
  if (a != kGround && b != kGround) {
    g.add(static_cast<std::size_t>(nrow(a)), static_cast<std::size_t>(nrow(b)), -gval);
    g.add(static_cast<std::size_t>(nrow(b)), static_cast<std::size_t>(nrow(a)), -gval);
  }
}

// Injects a current of `i` INTO node a and OUT of node b.
template <typename T>
void stamp_current(std::vector<T>& rhs, NodeId a, NodeId b, T i) {
  if (a != kGround) rhs[static_cast<std::size_t>(nrow(a))] += i;
  if (b != kGround) rhs[static_cast<std::size_t>(nrow(b))] -= i;
}

// Stamps a branch-current unknown at column/row m for a branch flowing from
// `a` to `b` (KCL coupling only; the branch equation row is the caller's
// responsibility).
template <typename M, typename T>
void stamp_branch_kcl(M& g, NodeId a, NodeId b, int m, T one) {
  if (a != kGround) {
    g.add(static_cast<std::size_t>(nrow(a)), static_cast<std::size_t>(m), one);
    g.add(static_cast<std::size_t>(m), static_cast<std::size_t>(nrow(a)), one);
  }
  if (b != kGround) {
    g.add(static_cast<std::size_t>(nrow(b)), static_cast<std::size_t>(m), -one);
    g.add(static_cast<std::size_t>(m), static_cast<std::size_t>(nrow(b)), -one);
  }
}

// Names the MNA unknown behind column `col` of the standard (non-UIC) system
// layout: node voltages, then vsource branch currents, then inductor branch
// currents. Used to enrich singular-matrix diagnostics.
std::string mna_unknown(const Circuit& c, std::size_t col) {
  const std::size_t nv = static_cast<std::size_t>(c.node_count() - 1);
  if (col < nv) return "node '" + c.node_name(static_cast<NodeId>(col + 1)) + "'";
  std::size_t k = col - nv;
  if (k < c.vsources().size())
    return "vsource '" + c.vsources()[k].name + "' branch current";
  k -= c.vsources().size();
  if (k < c.inductors().size())
    return "inductor '" + c.inductors()[k].name + "' branch current";
  return "unknown column " + std::to_string(col);
}

// Rethrows a singular-matrix failure with the offending MNA unknown named
// (and optional extra context), preserving the structured dim/pivot fields.
[[noreturn]] void rethrow_singular(const Circuit& c, const SingularMatrixError& e,
                                   const std::string& context) {
  throw SingularMatrixError(
      std::string(e.what()) + "; offending unknown: " + mna_unknown(c, e.pivot_col()) + context,
      e.dim(), e.pivot_col());
}

double switch_resistance(const Switch& s, bool closed) { return closed ? s.ron : s.roff; }

// Hysteretic voltage gates given node voltages and the previous gate state.
// Kind::Voltage closes when the control voltage rises above the threshold;
// Kind::TimeVoltage's gate asserts when it falls below (the enable-below
// comparator of hysteretic converter feedback).
bool gate_above(const Switch& s, const std::vector<double>& node_v, bool prev) {
  const double vc = node_v[static_cast<std::size_t>(s.cp)] -
                    node_v[static_cast<std::size_t>(s.cn)];
  if (prev) return vc > s.vth - 0.5 * s.vhyst;
  return vc > s.vth + 0.5 * s.vhyst;
}

bool gate_below(const Switch& s, const std::vector<double>& node_v, bool prev) {
  const double vc = node_v[static_cast<std::size_t>(s.cp)] -
                    node_v[static_cast<std::size_t>(s.cn)];
  if (prev) return vc < s.vth + 0.5 * s.vhyst;
  return vc < s.vth - 0.5 * s.vhyst;
}

// Combined closed state given the time part and the voltage-gate state.
bool switch_closed(const Switch& s, double t, bool vgate) {
  switch (s.kind) {
    case Switch::Kind::Time: return s.control(t);
    case Switch::Kind::Voltage: return vgate;
    case Switch::Kind::TimeVoltage: return s.control(t) && vgate;
  }
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// DC operating point
// ---------------------------------------------------------------------------

DcResult dc_operating_point(const Circuit& c, sparse::Kernel kernel) {
  const int nv = c.node_count() - 1;
  const int size = c.mna_size();
  require(size > 0, "dc_operating_point: empty circuit");

  std::vector<bool> vgate(c.switches().size(), false);
  std::vector<bool> sw_closed(c.switches().size(), false);
  for (std::size_t k = 0; k < c.switches().size(); ++k)
    sw_closed[k] = switch_closed(c.switches()[k], 0.0, vgate[k]);

  // Sparse stamp + structural analysis shared across the fixed-point
  // iterations: switch-state changes move values, never positions.
  sparse::SparseStamp stamp(static_cast<std::size_t>(size));
  sparse::CscMatrix csc;
  std::shared_ptr<const sparse::Symbolic> sym;

  std::vector<double> x;
  // Fixed-point iteration over voltage-controlled switch states.
  for (int iter = 0;; ++iter) {
    stamp.reset();
    std::vector<double> rhs(static_cast<std::size_t>(size), 0.0);

    for (const Resistor& r : c.resistors()) stamp_conductance(stamp, r.a, r.b, 1.0 / r.ohms);
    for (std::size_t k = 0; k < c.switches().size(); ++k) {
      const Switch& s = c.switches()[k];
      stamp_conductance(stamp, s.a, s.b, 1.0 / switch_resistance(s, sw_closed[k]));
    }
    // Capacitors: open in DC.
    for (std::size_t k = 0; k < c.vsources().size(); ++k) {
      const VSource& v = c.vsources()[k];
      const int m = c.vsource_current_index(static_cast<int>(k));
      stamp_branch_kcl(stamp, v.pos, v.neg, m, 1.0);
      rhs[static_cast<std::size_t>(m)] = v.wave(0.0);
    }
    for (std::size_t k = 0; k < c.inductors().size(); ++k) {
      const Inductor& l = c.inductors()[k];
      const int m = c.inductor_current_index(static_cast<int>(k));
      stamp_branch_kcl(stamp, l.a, l.b, m, 1.0);  // Branch row: v_a - v_b = 0 (short).
    }
    for (const ISource& i : c.isources()) stamp_current(rhs, i.neg, i.pos, i.wave(0.0));

    sparse::compress(stamp, csc);
    if (!sym) sym = sparse::analyze(csc, kernel);
    try {
      x = sparse::MnaFactorization(csc, sym).solve(rhs);
    } catch (const SingularMatrixError& e) {
      rethrow_singular(c, e, " (dc_operating_point)");
    }

    std::vector<double> node_v(static_cast<std::size_t>(c.node_count()), 0.0);
    for (int n = 1; n < c.node_count(); ++n)
      node_v[static_cast<std::size_t>(n)] = x[static_cast<std::size_t>(nrow(n))];

    bool changed = false;
    for (std::size_t k = 0; k < c.switches().size(); ++k) {
      const Switch& s = c.switches()[k];
      if (s.kind == Switch::Kind::Time) continue;
      const bool next_gate = s.kind == Switch::Kind::Voltage
                                 ? gate_above(s, node_v, vgate[k])
                                 : gate_below(s, node_v, vgate[k]);
      vgate[k] = next_gate;
      const bool next = switch_closed(s, 0.0, next_gate);
      if (next != sw_closed[k]) {
        sw_closed[k] = next;
        changed = true;
      }
    }
    if (!changed) {
      DcResult res;
      res.node_v = std::move(node_v);
      for (std::size_t k = 0; k < c.vsources().size(); ++k)
        res.vsource_i.push_back(
            x[static_cast<std::size_t>(c.vsource_current_index(static_cast<int>(k)))]);
      for (std::size_t k = 0; k < c.inductors().size(); ++k)
        res.inductor_i.push_back(
            x[static_cast<std::size_t>(c.inductor_current_index(static_cast<int>(k)))]);
      (void)nv;
      return res;
    }
    if (iter >= 64)
      throw NumericalError("dc_operating_point: voltage-controlled switches did not settle");
  }
}

// ---------------------------------------------------------------------------
// Transient
// ---------------------------------------------------------------------------

const std::vector<double>& TranResult::at(NodeId n) const {
  for (std::size_t i = 0; i < nodes.size(); ++i)
    if (nodes[i] == n) return voltages[i];
  throw InvalidParameter("TranResult: node was not recorded");
}

namespace {

struct TranState {
  std::vector<double> node_v;   // Indexed by NodeId, ground included.
  std::vector<double> cap_vab;  // Per capacitor.
  std::vector<double> cap_i;    // Per capacitor (trapezoidal memory).
  std::vector<double> ind_j;    // Per inductor.
  std::vector<double> ind_vab;  // Per inductor (trapezoidal memory).
  std::vector<bool> sw_closed;  // Per switch: combined closed state.
  std::vector<bool> sw_vgate;   // Per switch: hysteretic voltage-gate state.
};

// Initial conditions: DC operating point by default, or a consistent solve
// honouring explicit ICs (caps as fixed voltage sources, inductors as fixed
// current sources) for UIC runs.
TranState initial_state(const Circuit& c, bool use_ic) {
  TranState st;
  st.node_v.assign(static_cast<std::size_t>(c.node_count()), 0.0);
  st.cap_vab.assign(c.capacitors().size(), 0.0);
  st.cap_i.assign(c.capacitors().size(), 0.0);
  st.ind_j.assign(c.inductors().size(), 0.0);
  st.ind_vab.assign(c.inductors().size(), 0.0);
  st.sw_closed.assign(c.switches().size(), false);
  st.sw_vgate.assign(c.switches().size(), false);

  for (std::size_t k = 0; k < c.switches().size(); ++k)
    st.sw_closed[k] = switch_closed(c.switches()[k], 0.0, false);

  if (!use_ic) {
    const DcResult op = dc_operating_point(c);
    st.node_v = op.node_v;
    for (std::size_t k = 0; k < c.capacitors().size(); ++k) {
      const Capacitor& cap = c.capacitors()[k];
      st.cap_vab[k] = op.voltage(cap.a) - op.voltage(cap.b);
    }
    st.ind_j = op.inductor_i;
    for (std::size_t k = 0; k < c.switches().size(); ++k) {
      const Switch& s = c.switches()[k];
      if (s.kind == Switch::Kind::Time) continue;
      st.sw_vgate[k] = s.kind == Switch::Kind::Voltage ? gate_above(s, st.node_v, false)
                                                       : gate_below(s, st.node_v, false);
      st.sw_closed[k] = switch_closed(s, 0.0, st.sw_vgate[k]);
    }
    return st;
  }

  // UIC: solve the resistive network with every capacitor pinned to its
  // initial voltage (0 V when unspecified, matching SPICE UIC semantics) and
  // inductors injecting i0. Falls back to all-zero voltages when the network
  // is singular (e.g. conflicting source loops).
  const int nv = c.node_count() - 1;
  const int extra = static_cast<int>(c.capacitors().size());
  const int size = nv + static_cast<int>(c.vsources().size()) + extra;
  try {
    sparse::SparseStamp stamp(static_cast<std::size_t>(size));
    std::vector<double> rhs(static_cast<std::size_t>(size), 0.0);
    for (const Resistor& r : c.resistors()) stamp_conductance(stamp, r.a, r.b, 1.0 / r.ohms);
    for (std::size_t k = 0; k < c.switches().size(); ++k) {
      const Switch& s = c.switches()[k];
      stamp_conductance(stamp, s.a, s.b, 1.0 / switch_resistance(s, st.sw_closed[k]));
    }
    for (std::size_t k = 0; k < c.vsources().size(); ++k) {
      const VSource& v = c.vsources()[k];
      const int m = nv + static_cast<int>(k);
      stamp_branch_kcl(stamp, v.pos, v.neg, m, 1.0);
      rhs[static_cast<std::size_t>(m)] = v.wave(0.0);
    }
    int m = nv + static_cast<int>(c.vsources().size());
    for (const Capacitor& cap : c.capacitors()) {
      stamp_branch_kcl(stamp, cap.a, cap.b, m, 1.0);
      rhs[static_cast<std::size_t>(m)] = cap.use_ic ? cap.v0 : 0.0;
      ++m;
    }
    for (std::size_t k = 0; k < c.inductors().size(); ++k) {
      const Inductor& l = c.inductors()[k];
      stamp_current(rhs, l.b, l.a, l.use_ic ? l.i0 : 0.0);
    }
    for (const ISource& i : c.isources()) stamp_current(rhs, i.neg, i.pos, i.wave(0.0));

    sparse::CscMatrix csc;
    sparse::compress(stamp, csc);
    const std::vector<double> x =
        sparse::MnaFactorization(csc, sparse::analyze(csc, sparse::Kernel::Auto)).solve(rhs);
    for (int n = 1; n < c.node_count(); ++n)
      st.node_v[static_cast<std::size_t>(n)] = x[static_cast<std::size_t>(nrow(n))];
  } catch (const NumericalError&) {
    // Keep zeros; explicit ICs below still seed the reactive elements.
  }

  for (std::size_t k = 0; k < c.capacitors().size(); ++k) {
    const Capacitor& cap = c.capacitors()[k];
    st.cap_vab[k] = cap.use_ic
                        ? cap.v0
                        : st.node_v[static_cast<std::size_t>(cap.a)] -
                              st.node_v[static_cast<std::size_t>(cap.b)];
  }
  for (std::size_t k = 0; k < c.inductors().size(); ++k)
    st.ind_j[k] = c.inductors()[k].use_ic ? c.inductors()[k].i0 : 0.0;
  for (std::size_t k = 0; k < c.switches().size(); ++k) {
    const Switch& s = c.switches()[k];
    if (s.kind == Switch::Kind::Time) continue;
    st.sw_vgate[k] = s.kind == Switch::Kind::Voltage ? gate_above(s, st.node_v, false)
                                                     : gate_below(s, st.node_v, false);
    st.sw_closed[k] = switch_closed(s, 0.0, st.sw_vgate[k]);
  }
  return st;
}

// Identity of one transient conductance matrix. The stamped matrix is fully
// determined by (step size, integrator, switch states): every other
// contribution — resistors, capacitances, inductances, branch topology — is
// constant over a run. Keying on the exact bit pattern of h keeps cache hits
// byte-identical: a hit can only replay the factorization the same matrix
// would have produced.
struct FactorKey {
  std::uint64_t h_bits = 0;
  bool be = false;
  std::uint64_t sw_mask = 0;           ///< Packed switch states (<= 64 switches).
  std::vector<std::uint64_t> sw_wide;  ///< Fallback words above 64 switches.

  friend bool operator==(const FactorKey& a, const FactorKey& b) {
    return a.h_bits == b.h_bits && a.be == b.be && a.sw_mask == b.sw_mask &&
           a.sw_wide == b.sw_wide;
  }
};

inline std::uint64_t double_bits(double x) {
  std::uint64_t u;
  std::memcpy(&u, &x, sizeof u);
  return u;
}

// Packs the per-step configuration into `key`, reusing its storage (the wide
// fallback reassigns in place, so steady-state stepping stays allocation-free).
void pack_factor_key(FactorKey& key, double h, bool be, const std::vector<bool>& sw_closed) {
  key.h_bits = double_bits(h);
  key.be = be;
  const std::size_t n = sw_closed.size();
  if (n <= 64) {
    std::uint64_t m = 0;
    for (std::size_t k = 0; k < n; ++k)
      if (sw_closed[k]) m |= std::uint64_t{1} << k;
    key.sw_mask = m;
    key.sw_wide.clear();
    return;
  }
  key.sw_mask = 0;
  key.sw_wide.assign((n + 63) / 64, 0);
  for (std::size_t k = 0; k < n; ++k)
    if (sw_closed[k]) key.sw_wide[k / 64] |= std::uint64_t{1} << (k % 64);
}

// Bounded LRU over keyed factorizations. Linear scan: capacities are single
// digits (one entry per distinct phase configuration), so a scan beats any
// hashed structure and keeps eviction exact.
class FactorCache {
 public:
  explicit FactorCache(std::size_t capacity) : capacity_(capacity) {
    entries_.reserve(std::min<std::size_t>(capacity, 64));
  }

  /// Returns the resident factorization for `key` (refreshing its LRU stamp)
  /// or nullptr. The pointer is valid until the next insert().
  ///
  /// MRU fast path: consecutive steps overwhelmingly repeat the previous
  /// configuration, and the most recently returned entry already carries the
  /// maximum stamp — so a repeat costs one key compare, no scan, no stamp
  /// bump.
  sparse::MnaFactorization* find(const FactorKey& key) {
    if (mru_ < entries_.size() && entries_[mru_].key == key) return &entries_[mru_].lu;
    for (std::size_t i = 0; i < entries_.size(); ++i)
      if (entries_[i].key == key) {
        entries_[i].stamp = ++clock_;
        mru_ = i;
        return &entries_[i].lu;
      }
    return nullptr;
  }

  /// Inserts a freshly built factorization, displacing the least recently
  /// used entry when full. Returns the resident copy.
  sparse::MnaFactorization* insert(const FactorKey& key, sparse::MnaFactorization lu,
                                   std::size_t* evictions) {
    if (entries_.size() < capacity_) {
      entries_.push_back(Entry{key, std::move(lu), ++clock_});
      mru_ = entries_.size() - 1;
      return &entries_.back().lu;
    }
    std::size_t victim = 0;
    for (std::size_t i = 1; i < entries_.size(); ++i)
      if (entries_[i].stamp < entries_[victim].stamp) victim = i;
    entries_[victim] = Entry{key, std::move(lu), ++clock_};
    mru_ = victim;
    ++*evictions;
    return &entries_[victim].lu;
  }

  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    FactorKey key;
    sparse::MnaFactorization lu;
    std::uint64_t stamp;
  };
  std::size_t capacity_;
  std::uint64_t clock_ = 0;
  std::size_t mru_ = static_cast<std::size_t>(-1);  ///< Index of the last entry returned.
  std::vector<Entry> entries_;
};

}  // namespace

TranResult transient(const Circuit& c, const TranSpec& spec) {
  IVORY_TRACE("spice.transient");
  require(spec.dt > 0.0, "transient: dt must be positive");
  require(spec.tstop > spec.dt, "transient: tstop must exceed dt");
  require(spec.record_every >= 1, "transient: record_every must be >= 1");

  const int size = c.mna_size();
  require(size > 0, "transient: empty circuit");

  TranState st = initial_state(c, spec.use_ic);

  TranResult res;
  res.nodes = spec.record_nodes;
  if (res.nodes.empty())
    for (int n = 1; n < c.node_count(); ++n) res.nodes.push_back(n);
  res.voltages.assign(res.nodes.size(), {});

  // Hoisted scratch row for the streaming sink: the record path stays
  // allocation-free either way.
  std::vector<double> sink_row(spec.sample_sink ? res.nodes.size() : 0);
  auto record = [&](double t) {
    if (spec.sample_sink) {
      for (std::size_t i = 0; i < res.nodes.size(); ++i)
        sink_row[i] = st.node_v[static_cast<std::size_t>(res.nodes[i])];
      spec.sample_sink(t, sink_row.data(), sink_row.size());
      return;
    }
    res.time.push_back(t);
    for (std::size_t i = 0; i < res.nodes.size(); ++i)
      res.voltages[i].push_back(st.node_v[static_cast<std::size_t>(res.nodes[i])]);
  };
  record(0.0);

  require(spec.lu_cache_capacity >= 0, "transient: lu_cache_capacity must be >= 0");
  const std::size_t cache_capacity = static_cast<std::size_t>(spec.lu_cache_capacity);
  FactorCache cache(cache_capacity);
  std::optional<sparse::MnaFactorization> uncached;  // Capacity-0 (disabled) path.
  FactorKey key;  // Scratch, reused every step.

  // Sparse stamping state, hoisted: the triplet accumulator and CSC buffer
  // reuse their storage across refactorizations, and the structural analysis
  // (kernel choice + orderings) is computed once per sparsity pattern and
  // shared across every same-pattern numeric factorization — switch-state
  // and step-size changes move matrix values, never positions.
  sparse::SparseStamp stamp(static_cast<std::size_t>(size));
  sparse::CscMatrix csc;
  std::shared_ptr<const sparse::Symbolic> sym;

  // Hoisted per-step buffers: the steady-state loop below performs no heap
  // allocation (vector assignments reuse capacity after the first step).
  std::vector<double> rhs(static_cast<std::size_t>(size), 0.0);
  std::vector<double> x(static_cast<std::size_t>(size), 0.0);
  std::vector<bool> sw_closed_before;
  std::vector<bool> sw_vgate_before;

  double t = 0.0;
  std::size_t step_index = 0;
  bool first_step = true;
  const double tend = spec.tstop * (1.0 - 1e-12);

  // Adaptive (delta-V limited) stepping state: h_base grows/shrinks between
  // spec.dt and h_cap; fixed-step runs keep h_base == spec.dt forever.
  require(!spec.adaptive || spec.dv_max_v > 0.0, "transient: dv_max must be positive");
  const double h_cap =
      spec.adaptive ? (spec.dt_max > 0.0 ? spec.dt_max : 100.0 * spec.dt) : spec.dt;
  require(h_cap >= spec.dt, "transient: dt_max must be >= dt");
  double h_base = spec.dt;

  while (t < tend) {
    double h = h_base;
    if (spec.align_to_switch_edges) {
      // Floor on the shortened step: an edge a few ULP past t (floating-point
      // residue of landing exactly on a previous edge) must count as already
      // taken, or h collapses toward zero and the companion conductances
      // blow up.
      const double h_floor = std::max(spec.dt * 1e-6,
                                      8.0 * std::numeric_limits<double>::epsilon() * t);
      for (const Switch& s : c.switches()) {
        if (!s.next_edge) continue;
        const double e = s.next_edge(t);
        if (e > t + h_floor && e < t + h) h = e - t;
      }
    }
    if (t + h > spec.tstop) h = spec.tstop - t;
    if (h < spec.dt * 1e-6) break;  // Reached tstop up to floating-point residue.
    const double tm = t + h;

    // Switch states for this step: time switches sampled at the midpoint
    // (steps land on edges, so the midpoint is inside a single phase);
    // voltage-controlled switches from the previous accepted solution.
    // Snapshots allow a rejected adaptive step to roll back cleanly.
    sw_closed_before = st.sw_closed;
    sw_vgate_before = st.sw_vgate;
    bool states_changed = first_step;
    for (std::size_t k = 0; k < c.switches().size(); ++k) {
      const Switch& s = c.switches()[k];
      if (s.kind != Switch::Kind::Time) {
        st.sw_vgate[k] = s.kind == Switch::Kind::Voltage
                             ? gate_above(s, st.node_v, st.sw_vgate[k])
                             : gate_below(s, st.node_v, st.sw_vgate[k]);
      }
      const bool next = switch_closed(s, t + 0.5 * h, st.sw_vgate[k]);
      if (next != static_cast<bool>(st.sw_closed[k])) {
        st.sw_closed[k] = next;
        states_changed = true;
      }
    }

    // One BE step after every discontinuity avoids trapezoidal ringing.
    const bool use_be = spec.method == Integrator::BackwardEuler || first_step || states_changed;

    // Factorization lookup: the matrix is determined by (h, integrator,
    // switch states), so the keyed cache factors once per distinct
    // configuration and replays it on every later step with the same key.
    pack_factor_key(key, h, use_be, st.sw_closed);
    sparse::MnaFactorization* lu =
        cache_capacity > 0 ? cache.find(key) : nullptr;
    if (lu != nullptr) {
      ++res.lu_cache_hits;
    } else {
      stamp.reset();
      for (const Resistor& r : c.resistors()) stamp_conductance(stamp, r.a, r.b, 1.0 / r.ohms);
      for (std::size_t k = 0; k < c.switches().size(); ++k) {
        const Switch& s = c.switches()[k];
        stamp_conductance(stamp, s.a, s.b, 1.0 / switch_resistance(s, st.sw_closed[k]));
      }
      for (std::size_t k = 0; k < c.capacitors().size(); ++k) {
        const Capacitor& cap = c.capacitors()[k];
        const double gc = (use_be ? 1.0 : 2.0) * cap.farads / h;
        stamp_conductance(stamp, cap.a, cap.b, gc);
      }
      for (std::size_t k = 0; k < c.vsources().size(); ++k) {
        const VSource& v = c.vsources()[k];
        stamp_branch_kcl(stamp, v.pos, v.neg, c.vsource_current_index(static_cast<int>(k)), 1.0);
      }
      for (std::size_t k = 0; k < c.inductors().size(); ++k) {
        const Inductor& l = c.inductors()[k];
        const int m = c.inductor_current_index(static_cast<int>(k));
        stamp_branch_kcl(stamp, l.a, l.b, m, 1.0);
        stamp.add(static_cast<std::size_t>(m), static_cast<std::size_t>(m),
                  -(use_be ? 1.0 : 2.0) * l.henries / h);
      }
      sparse::compress(stamp, csc);
      if (!sym || csc.pattern_hash() != sym->pattern_hash) {
        sym = sparse::analyze(csc, spec.kernel);
        ++res.symbolic_analyses;
      }
      try {
        if (cache_capacity > 0) {
          lu = cache.insert(key, sparse::MnaFactorization(csc, sym),
                            &res.lu_cache_evictions);
        } else {
          uncached.emplace(csc, sym);
          lu = &*uncached;
        }
      } catch (const SingularMatrixError& e) {
        rethrow_singular(c, e, " (transient at t=" + std::to_string(t) +
                                   ", h=" + std::to_string(h) + ")");
      } catch (const NumericalError& e) {
        throw NumericalError(std::string(e.what()) + " (transient at t=" + std::to_string(t) +
                             ", h=" + std::to_string(h) + ")");
      }
      ++res.lu_factorizations;
      res.factor_nnz = lu->factor_nnz();
      if (res.kernel.empty()) res.kernel = sparse::kernel_name(lu->kernel());
    }
    res.max_resident_factorizations =
        std::max(res.max_resident_factorizations,
                 cache_capacity > 0 ? cache.size() : std::size_t{1});

    std::fill(rhs.begin(), rhs.end(), 0.0);
    for (std::size_t k = 0; k < c.capacitors().size(); ++k) {
      const Capacitor& cap = c.capacitors()[k];
      const double gc = (use_be ? 1.0 : 2.0) * cap.farads / h;
      const double ieq = use_be ? gc * st.cap_vab[k] : gc * st.cap_vab[k] + st.cap_i[k];
      stamp_current(rhs, cap.a, cap.b, ieq);
    }
    for (std::size_t k = 0; k < c.vsources().size(); ++k) {
      const VSource& v = c.vsources()[k];
      rhs[static_cast<std::size_t>(c.vsource_current_index(static_cast<int>(k)))] = v.wave(tm);
    }
    for (std::size_t k = 0; k < c.inductors().size(); ++k) {
      const Inductor& l = c.inductors()[k];
      const int m = c.inductor_current_index(static_cast<int>(k));
      const double zl = (use_be ? 1.0 : 2.0) * l.henries / h;
      rhs[static_cast<std::size_t>(m)] =
          use_be ? -zl * st.ind_j[k] : -zl * st.ind_j[k] - st.ind_vab[k];
    }
    for (const ISource& i : c.isources()) stamp_current(rhs, i.neg, i.pos, i.wave(tm));

    lu->solve_into(rhs, x);

    if (spec.adaptive) {
      double dv = 0.0;
      for (int n = 1; n < c.node_count(); ++n)
        dv = std::max(dv, std::fabs(x[static_cast<std::size_t>(nrow(n))] -
                                    st.node_v[static_cast<std::size_t>(n)]));
      if (dv > spec.dv_max_v && h > spec.dt * 1.0001) {
        // Reject: restore switch states, shrink, retry the same instant.
        st.sw_closed = sw_closed_before;
        st.sw_vgate = sw_vgate_before;
        h_base = std::max(spec.dt, 0.5 * h);
        continue;
      }
      if (states_changed)
        h_base = spec.dt;  // Re-resolve fast dynamics after a switch event.
      else if (dv < 0.3 * spec.dv_max_v)
        h_base = std::min(h_cap, 1.5 * h_base);
    }

    for (int n = 1; n < c.node_count(); ++n)
      st.node_v[static_cast<std::size_t>(n)] = x[static_cast<std::size_t>(nrow(n))];
    for (std::size_t k = 0; k < c.capacitors().size(); ++k) {
      const Capacitor& cap = c.capacitors()[k];
      const double vab = st.node_v[static_cast<std::size_t>(cap.a)] -
                         st.node_v[static_cast<std::size_t>(cap.b)];
      const double gc = (use_be ? 1.0 : 2.0) * cap.farads / h;
      st.cap_i[k] = use_be ? gc * (vab - st.cap_vab[k]) : gc * (vab - st.cap_vab[k]) - st.cap_i[k];
      st.cap_vab[k] = vab;
    }
    for (std::size_t k = 0; k < c.inductors().size(); ++k) {
      const Inductor& l = c.inductors()[k];
      const int m = c.inductor_current_index(static_cast<int>(k));
      st.ind_j[k] = x[static_cast<std::size_t>(m)];
      st.ind_vab[k] = st.node_v[static_cast<std::size_t>(l.a)] -
                      st.node_v[static_cast<std::size_t>(l.b)];
    }

    t = tm;
    ++step_index;
    ++res.steps_taken;
    first_step = false;
    if (step_index % static_cast<std::size_t>(spec.record_every) == 0) record(t);
  }

  // Fold the run's counters onto the process registry once, here — the
  // stepping loop above stays metrics-free, and the TranResult fields remain
  // the per-run snapshot API (the registry holds process-lifetime totals).
  {
    static metrics::Counter& runs = metrics::registry().counter("spice.tran.runs");
    static metrics::Counter& steps = metrics::registry().counter("spice.tran.steps");
    static metrics::Counter& factorizations =
        metrics::registry().counter("spice.tran.lu_factorizations");
    static metrics::Counter& hits = metrics::registry().counter("spice.tran.lu_cache_hits");
    static metrics::Counter& evictions =
        metrics::registry().counter("spice.tran.lu_cache_evictions");
    runs.add();
    steps.add(res.steps_taken);
    factorizations.add(res.lu_factorizations);
    hits.add(res.lu_cache_hits);
    evictions.add(res.lu_cache_evictions);
    metrics::registry()
        .gauge("spice.tran.max_resident_factorizations")
        .set_max(static_cast<std::int64_t>(res.max_resident_factorizations));
    // Sparse-kernel observability: per-kernel factorization/solve counts, the
    // symbolic-analysis count (reuse means this stays at runs, not
    // factorizations), and the fill-in high-water mark.
    // The kernel names are a closed set, so the registry lookups are
    // function-local statics (registered once, then lock-free adds): short
    // grid runs must not pay string building + a mutexed lookup per run.
    if (!res.kernel.empty()) {
      struct LuCounters {
        metrics::Counter& factorizations;
        metrics::Counter& solves;
      };
      static LuCounters dense{metrics::registry().counter("ivory.lu.dense.factorizations"),
                              metrics::registry().counter("ivory.lu.dense.solves")};
      static LuCounters banded{metrics::registry().counter("ivory.lu.banded.factorizations"),
                               metrics::registry().counter("ivory.lu.banded.solves")};
      static LuCounters sparse_lu{metrics::registry().counter("ivory.lu.sparse.factorizations"),
                                  metrics::registry().counter("ivory.lu.sparse.solves")};
      static metrics::Counter& symbolic =
          metrics::registry().counter("ivory.lu.symbolic_analyses");
      static metrics::Gauge& fill = metrics::registry().gauge("ivory.lu.fill_nnz");
      LuCounters& by_kernel =
          res.kernel == "banded" ? banded : res.kernel == "sparse" ? sparse_lu : dense;
      by_kernel.factorizations.add(res.lu_factorizations);
      by_kernel.solves.add(res.steps_taken);
      symbolic.add(res.symbolic_analyses);
      fill.set_max(static_cast<std::int64_t>(res.factor_nnz));
    }
  }
  return res;
}

// ---------------------------------------------------------------------------
// AC analysis
// ---------------------------------------------------------------------------

const std::vector<std::complex<double>>& AcResult::at(NodeId n) const {
  for (std::size_t i = 0; i < nodes.size(); ++i)
    if (nodes[i] == n) return response[i];
  throw InvalidParameter("AcResult: node was not recorded");
}

AcResult ac_analysis(const Circuit& c, const std::vector<double>& freqs_hz,
                     std::vector<NodeId> record_nodes) {
  require(!freqs_hz.empty(), "ac_analysis: need at least one frequency");
  const int size = c.mna_size();
  require(size > 0, "ac_analysis: empty circuit");

  // Freeze switch states at the operating point.
  std::vector<bool> sw_closed(c.switches().size(), false);
  {
    const DcResult op = dc_operating_point(c);
    for (std::size_t k = 0; k < c.switches().size(); ++k) {
      const Switch& s = c.switches()[k];
      const bool vgate = s.kind == Switch::Kind::Voltage  ? gate_above(s, op.node_v, false)
                         : s.kind == Switch::Kind::TimeVoltage ? gate_below(s, op.node_v, false)
                                                               : false;
      sw_closed[k] = switch_closed(s, 0.0, vgate);
    }
  }

  AcResult res;
  res.freq_hz = freqs_hz;
  res.nodes = std::move(record_nodes);
  if (res.nodes.empty())
    for (int n = 1; n < c.node_count(); ++n) res.nodes.push_back(n);
  res.response.assign(res.nodes.size(), {});

  using C = std::complex<double>;
  for (double f : freqs_hz) {
    require(f > 0.0, "ac_analysis: frequencies must be positive");
    const C jw(0.0, 2.0 * 3.14159265358979323846 * f);
    Matrix<C> g(static_cast<std::size_t>(size), static_cast<std::size_t>(size));
    std::vector<C> rhs(static_cast<std::size_t>(size), C{});

    for (const Resistor& r : c.resistors()) stamp_conductance(g, r.a, r.b, C{1.0 / r.ohms});
    for (std::size_t k = 0; k < c.switches().size(); ++k) {
      const Switch& s = c.switches()[k];
      stamp_conductance(g, s.a, s.b, C{1.0 / switch_resistance(s, sw_closed[k])});
    }
    for (const Capacitor& cap : c.capacitors()) stamp_conductance(g, cap.a, cap.b, jw * cap.farads);
    for (std::size_t k = 0; k < c.vsources().size(); ++k) {
      const VSource& v = c.vsources()[k];
      const int m = c.vsource_current_index(static_cast<int>(k));
      stamp_branch_kcl(g, v.pos, v.neg, m, C{1.0});
      rhs[static_cast<std::size_t>(m)] = C{v.wave.ac_magnitude()};
    }
    for (std::size_t k = 0; k < c.inductors().size(); ++k) {
      const Inductor& l = c.inductors()[k];
      const int m = c.inductor_current_index(static_cast<int>(k));
      stamp_branch_kcl(g, l.a, l.b, m, C{1.0});
      g(m, m) -= jw * l.henries;
    }
    for (const ISource& i : c.isources())
      stamp_current(rhs, i.neg, i.pos, C{i.wave.ac_magnitude()});

    const std::vector<C> x = solve_linear(std::move(g), rhs);
    for (std::size_t i = 0; i < res.nodes.size(); ++i) {
      const NodeId n = res.nodes[i];
      res.response[i].push_back(n == kGround ? C{} : x[static_cast<std::size_t>(nrow(n))]);
    }
  }
  return res;
}

std::vector<double> log_frequencies(double lo_hz, double hi_hz, int n) {
  require(lo_hz > 0.0 && hi_hz > lo_hz, "log_frequencies: need 0 < lo < hi");
  require(n >= 2, "log_frequencies: need n >= 2");
  std::vector<double> out(static_cast<std::size_t>(n));
  const double llo = std::log10(lo_hz), lhi = std::log10(hi_hz);
  for (int i = 0; i < n; ++i)
    out[static_cast<std::size_t>(i)] =
        std::pow(10.0, llo + (lhi - llo) * static_cast<double>(i) / (n - 1));
  return out;
}

}  // namespace ivory::spice
