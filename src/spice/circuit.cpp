#include "spice/circuit.hpp"

#include "common/error.hpp"

namespace ivory::spice {

NodeId Circuit::node(const std::string& name) {
  const auto it = by_name_.find(name);
  if (it != by_name_.end()) return it->second;
  const NodeId id = static_cast<NodeId>(names_.size());
  names_.push_back(name);
  by_name_.emplace(name, id);
  return id;
}

NodeId Circuit::find_node(const std::string& name) const {
  const auto it = by_name_.find(name);
  require(it != by_name_.end(), "Circuit: unknown node '" + name + "'");
  return it->second;
}

namespace {
void check_terminals(const Circuit& c, NodeId a, NodeId b, const std::string& name) {
  require(a >= 0 && a < c.node_count() && b >= 0 && b < c.node_count(),
          "Circuit: element '" + name + "' references an unknown node");
  require(a != b, "Circuit: element '" + name + "' has both terminals on the same node");
}
}  // namespace

void Circuit::add_resistor(const std::string& name, NodeId a, NodeId b, double ohms) {
  check_terminals(*this, a, b, name);
  require(ohms > 0.0, "Circuit: resistor '" + name + "' must have positive resistance");
  resistors_.push_back({name, a, b, ohms});
}

void Circuit::add_capacitor(const std::string& name, NodeId a, NodeId b, double farads) {
  check_terminals(*this, a, b, name);
  require(farads > 0.0, "Circuit: capacitor '" + name + "' must have positive capacitance");
  capacitors_.push_back({name, a, b, farads, 0.0, false});
}

void Circuit::add_capacitor_ic(const std::string& name, NodeId a, NodeId b, double farads,
                               double v0) {
  add_capacitor(name, a, b, farads);
  capacitors_.back().v0 = v0;
  capacitors_.back().use_ic = true;
}

void Circuit::add_inductor(const std::string& name, NodeId a, NodeId b, double henries) {
  check_terminals(*this, a, b, name);
  require(henries > 0.0, "Circuit: inductor '" + name + "' must have positive inductance");
  inductors_.push_back({name, a, b, henries, 0.0, false});
}

void Circuit::add_inductor_ic(const std::string& name, NodeId a, NodeId b, double henries,
                              double i0) {
  add_inductor(name, a, b, henries);
  inductors_.back().i0 = i0;
  inductors_.back().use_ic = true;
}

void Circuit::add_vsource(const std::string& name, NodeId pos, NodeId neg, Waveform wave) {
  check_terminals(*this, pos, neg, name);
  vsources_.push_back({name, pos, neg, std::move(wave)});
}

void Circuit::add_isource(const std::string& name, NodeId pos, NodeId neg, Waveform wave) {
  check_terminals(*this, pos, neg, name);
  isources_.push_back({name, pos, neg, std::move(wave)});
}

void Circuit::add_switch(const std::string& name, NodeId a, NodeId b, double ron, double roff,
                         std::function<bool(double)> control,
                         std::function<double(double)> next_edge) {
  check_terminals(*this, a, b, name);
  require(ron > 0.0 && roff > ron, "Circuit: switch '" + name + "' needs 0 < ron < roff");
  require(static_cast<bool>(control), "Circuit: switch '" + name + "' needs a control function");
  Switch s;
  s.name = name;
  s.a = a;
  s.b = b;
  s.ron = ron;
  s.roff = roff;
  s.kind = Switch::Kind::Time;
  s.control = std::move(control);
  s.next_edge = std::move(next_edge);
  switches_.push_back(std::move(s));
}

void Circuit::add_vcswitch(const std::string& name, NodeId a, NodeId b, NodeId cp, NodeId cn,
                           double vth, double vhyst, double ron, double roff) {
  check_terminals(*this, a, b, name);
  require(ron > 0.0 && roff > ron, "Circuit: switch '" + name + "' needs 0 < ron < roff");
  require(vhyst >= 0.0, "Circuit: switch '" + name + "' needs non-negative hysteresis");
  Switch s;
  s.name = name;
  s.a = a;
  s.b = b;
  s.ron = ron;
  s.roff = roff;
  s.kind = Switch::Kind::Voltage;
  s.cp = cp;
  s.cn = cn;
  s.vth = vth;
  s.vhyst = vhyst;
  switches_.push_back(std::move(s));
}

void Circuit::add_gated_switch(const std::string& name, NodeId a, NodeId b, double ron,
                               double roff, std::function<bool(double)> control,
                               std::function<double(double)> next_edge, NodeId cp, NodeId cn,
                               double vth, double vhyst) {
  check_terminals(*this, a, b, name);
  require(ron > 0.0 && roff > ron, "Circuit: switch '" + name + "' needs 0 < ron < roff");
  require(static_cast<bool>(control), "Circuit: switch '" + name + "' needs a control function");
  require(vhyst >= 0.0, "Circuit: switch '" + name + "' needs non-negative hysteresis");
  Switch s;
  s.name = name;
  s.a = a;
  s.b = b;
  s.ron = ron;
  s.roff = roff;
  s.kind = Switch::Kind::TimeVoltage;
  s.control = std::move(control);
  s.next_edge = std::move(next_edge);
  s.cp = cp;
  s.cn = cn;
  s.vth = vth;
  s.vhyst = vhyst;
  switches_.push_back(std::move(s));
}

int Circuit::mna_size() const {
  return node_count() - 1 + static_cast<int>(vsources_.size()) +
         static_cast<int>(inductors_.size());
}

int Circuit::vsource_current_index(int k) const { return node_count() - 1 + k; }

int Circuit::inductor_current_index(int k) const {
  return node_count() - 1 + static_cast<int>(vsources_.size()) + k;
}

}  // namespace ivory::spice
