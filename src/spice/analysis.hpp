// Circuit analyses: DC operating point, transient, AC sweep.
//
// All three assemble modified-nodal-analysis (MNA) systems over the Circuit
// netlist: node voltages plus one branch-current unknown per voltage source
// and per inductor. The transient integrator supports backward Euler and
// trapezoidal companion models, lands steps exactly on announced switch edges,
// takes a backward-Euler step right after any switch event (avoids the
// classic trapezoidal ringing at discontinuities), and reuses LU
// factorizations through a small LRU keyed by (step size, integrator,
// switch-state bitmask) — a steady-state switched circuit factors once per
// distinct phase configuration, not once per edge.
#pragma once

#include <complex>
#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "common/sparse.hpp"
#include "spice/circuit.hpp"

namespace ivory::spice {

struct DcResult {
  std::vector<double> node_v;   ///< Indexed by NodeId (ground included, = 0).
  std::vector<double> vsource_i;  ///< Current through each voltage source.
  std::vector<double> inductor_i; ///< Current through each inductor.

  double voltage(NodeId n) const { return node_v.at(static_cast<std::size_t>(n)); }
};

/// Computes the DC operating point: capacitors open, inductors short,
/// time-controlled switches at their t = 0 state, voltage-controlled switches
/// resolved by fixed-point iteration. `kernel` selects the factorization
/// kernel (Auto = density/bandwidth heuristic).
DcResult dc_operating_point(const Circuit& circuit,
                            sparse::Kernel kernel = sparse::Kernel::Auto);

enum class Integrator { BackwardEuler, Trapezoidal };

struct TranSpec {
  double tstop = 0.0;
  double dt = 0.0;
  Integrator method = Integrator::Trapezoidal;
  /// Start from capacitor/inductor initial conditions instead of the DC
  /// operating point (SPICE "UIC").
  bool use_ic = false;
  /// Record every n-th accepted step (1 = all).
  int record_every = 1;
  /// Nodes to record; empty = all non-ground nodes.
  std::vector<NodeId> record_nodes;
  /// Shorten steps to land exactly on switch edges announced via
  /// Switch::next_edge.
  bool align_to_switch_edges = true;

  /// Adaptive (delta-V limited) stepping: the step grows while the largest
  /// node-voltage change per step stays under `dv_max_v` and shrinks when it
  /// is exceeded (the offending step is retried). `dt` is the initial and
  /// minimum step; `dt_max` caps growth (0 = 100x dt). Switch events still
  /// land exactly and reset the step. Useful for circuits with long quiet
  /// stretches between fast transients (PDN droop studies).
  bool adaptive = false;
  double dv_max_v = 1e-3;
  double dt_max = 0.0;

  /// Capacity of the keyed LU-factorization cache: factorizations are kept
  /// in a small LRU keyed by (step size, integrator, switch-state bitmask),
  /// so steady-state switched circuits factor once per distinct phase
  /// configuration instead of once per switch edge. 1 reproduces the old
  /// single-slot behaviour; 0 disables reuse entirely (refactorize every
  /// step). The output waveform is byte-identical at every capacity: a cache
  /// hit replays the exact factorization the same matrix would produce.
  int lu_cache_capacity = 8;

  /// Factorization kernel. Auto picks from the stamped structure
  /// (density/bandwidth heuristic, see sparse::analyze): small or dense
  /// systems keep the legacy dense LU byte for byte, PDN ladders and regular
  /// grids go banded, irregular large systems go general sparse. Any other
  /// value forces that kernel.
  sparse::Kernel kernel = sparse::Kernel::Auto;

  /// Streaming sample sink. When set, every recorded row is delivered here
  /// — (time, voltages of the recorded nodes in TranResult::nodes order, row
  /// width) — instead of being appended to TranResult::time/voltages, which
  /// stay empty; the counters in the returned TranResult are unaffected. The
  /// rows arrive in simulation order on the calling thread. Exceptions
  /// thrown by the sink propagate out of transient() (the streamed serve
  /// transport uses this to abort a cancelled request mid-run).
  std::function<void(double t, const double* v, std::size_t n)> sample_sink;
};

struct TranResult {
  std::vector<double> time;
  std::vector<NodeId> nodes;                 ///< Recorded nodes, in order.
  std::vector<std::vector<double>> voltages; ///< voltages[i] is the trace of nodes[i].

  std::size_t steps_taken = 0;
  std::size_t lu_factorizations = 0;

  // Keyed-cache observability (see TranSpec::lu_cache_capacity). Hits count
  // steps that reused a resident factorization (including consecutive steps
  // with an unchanged configuration); evictions count LRU displacements;
  // max_resident_factorizations is the high-water mark of entries held.
  std::size_t lu_cache_hits = 0;
  std::size_t lu_cache_evictions = 0;
  std::size_t max_resident_factorizations = 0;

  // Sparse-kernel observability. `kernel` is the selected factorization
  // kernel ("dense" / "banded" / "sparse"); `symbolic_analyses` counts
  // structural analyses performed (1 per run when the pattern is stable —
  // switch-state changes refactorize numerically without re-running
  // symbolic); `factor_nnz` is the stored factor's nonzero footprint
  // (n^2 dense, band storage banded, nnz(L)+nnz(U)+n sparse).
  std::string kernel;
  std::size_t symbolic_analyses = 0;
  std::size_t factor_nnz = 0;

  /// Trace of a recorded node; throws InvalidParameter if it was not recorded.
  const std::vector<double>& at(NodeId n) const;
};

TranResult transient(const Circuit& circuit, const TranSpec& spec);

struct AcResult {
  std::vector<double> freq_hz;
  std::vector<NodeId> nodes;
  /// response[i][k]: complex voltage of nodes[i] at freq_hz[k] for unit
  /// (or ac_magnitude-scaled) excitation.
  std::vector<std::vector<std::complex<double>>> response;

  const std::vector<std::complex<double>>& at(NodeId n) const;
};

/// Small-signal sweep: sources contribute their ac_magnitude; switches are
/// frozen at their DC-operating-point state.
AcResult ac_analysis(const Circuit& circuit, const std::vector<double>& freqs_hz,
                     std::vector<NodeId> record_nodes = {});

/// Log-spaced frequency grid helper: n points from lo to hi inclusive.
std::vector<double> log_frequencies(double lo_hz, double hi_hz, int n);

}  // namespace ivory::spice
