// Multi-phase switching clocks for converter netlists.
//
// A PhaseClock divides the switching period into `n_phases` slots. Phase k is
// active during [k/n, k/n + duty) of the period (shifted by `offset`
// periods). Converter netlist builders attach phase signals to switches as
// control + next-edge functions so the transient driver can land steps on
// every switching edge.
#pragma once

#include <cmath>
#include <functional>
#include <limits>

#include "common/error.hpp"

namespace ivory::spice {

class PhaseClock {
 public:
  /// `duty` is the fraction of the period each phase is active; it must fit
  /// in a slot (duty <= 1/n_phases) so phases never overlap.
  PhaseClock(double freq_hz, int n_phases, double duty, double offset_periods = 0.0)
      : period_(1.0 / freq_hz), n_(n_phases), duty_(duty), offset_(offset_periods) {
    require(freq_hz > 0.0, "PhaseClock: frequency must be positive");
    require(n_phases >= 1, "PhaseClock: need at least one phase");
    require(duty > 0.0 && duty <= 1.0 / n_phases + 1e-12,
            "PhaseClock: duty must be in (0, 1/n_phases]");
  }

  double period() const { return period_; }
  double frequency() const { return 1.0 / period_; }
  int phases() const { return n_; }
  double duty() const { return duty_; }

  /// True while phase `k` is active at time t.
  bool active(int k, double t) const {
    const double frac = phase_fraction(t);
    const double start = static_cast<double>(k) / n_;
    return frac >= start && frac < start + duty_;
  }

  /// Next time > t at which phase `k` toggles (on or off edge). An edge
  /// within a few ULP of t counts as already passed (t typically sits
  /// exactly on the previous edge, up to floating-point residue).
  double next_edge(int k, double t) const {
    const double start = static_cast<double>(k) / n_;
    const double stop = start + duty_;
    const double base = std::floor(t / period_ - offset_) + offset_;
    const double tol = std::max(1e-9 * period_,
                                8.0 * std::numeric_limits<double>::epsilon() * std::fabs(t));
    // Candidate edges in this period and the next two (handles t sitting
    // exactly on an edge and duty boundaries at the period wrap).
    for (int p = 0; p < 3; ++p) {
      const double t_on = (base + p + start) * period_;
      const double t_off = (base + p + stop) * period_;
      if (t_on > t + tol) return t_on;
      if (t_off > t + tol) return t_off;
    }
    return t + period_;  // Unreachable in practice.
  }

  /// Control function for phase `k`, bindable to Circuit::add_switch.
  std::function<bool(double)> control(int k) const {
    check_phase(k);
    return [*this, k](double t) { return active(k, t); };
  }

  /// Next-edge function for phase `k`.
  std::function<double(double)> edge_fn(int k) const {
    check_phase(k);
    return [*this, k](double t) { return next_edge(k, t); };
  }

 private:
  void check_phase(int k) const { require(k >= 0 && k < n_, "PhaseClock: phase out of range"); }

  double phase_fraction(double t) const {
    double frac = t / period_ - offset_;
    frac -= std::floor(frac);
    return frac;
  }

  double period_;
  int n_;
  double duty_;
  double offset_;
};

}  // namespace ivory::spice
