#include "spice/waveform.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace ivory::spice {

Waveform Waveform::dc(double value) {
  return Waveform([value](double) { return value; });
}

Waveform Waveform::pulse(double v1, double v2, double delay_s, double rise_s, double fall_s,
                         double width_s, double period_s) {
  require(period_s > 0.0, "Waveform::pulse: period must be positive");
  require(rise_s >= 0.0 && fall_s >= 0.0 && width_s >= 0.0,
          "Waveform::pulse: rise/fall/width must be non-negative");
  require(rise_s + width_s + fall_s <= period_s,
          "Waveform::pulse: rise + width + fall must fit in the period");
  return Waveform([=](double t) {
    if (t < delay_s) return v1;
    const double tp = std::fmod(t - delay_s, period_s);
    if (tp < rise_s) return rise_s > 0.0 ? v1 + (v2 - v1) * tp / rise_s : v2;
    if (tp < rise_s + width_s) return v2;
    if (tp < rise_s + width_s + fall_s)
      return fall_s > 0.0 ? v2 + (v1 - v2) * (tp - rise_s - width_s) / fall_s : v1;
    return v1;
  });
}

Waveform Waveform::sine(double offset, double amplitude, double freq_hz, double delay_s,
                        double phase_rad) {
  require(freq_hz > 0.0, "Waveform::sine: frequency must be positive");
  return Waveform([=](double t) {
    if (t < delay_s) return offset;
    return offset + amplitude * std::sin(2.0 * pi * freq_hz * (t - delay_s) + phase_rad);
  });
}

Waveform Waveform::pwl(std::vector<std::pair<double, double>> points) {
  require(!points.empty(), "Waveform::pwl: need at least one point");
  std::vector<double> xs, ys;
  xs.reserve(points.size());
  ys.reserve(points.size());
  for (const auto& [t, v] : points) {
    xs.push_back(t);
    ys.push_back(v);
  }
  PiecewiseLinear f(std::move(xs), std::move(ys));
  return Waveform([f = std::move(f)](double t) { return f(t); });
}

Waveform Waveform::custom(std::function<double(double)> fn) {
  require(static_cast<bool>(fn), "Waveform::custom: function must be callable");
  return Waveform(std::move(fn));
}

}  // namespace ivory::spice
