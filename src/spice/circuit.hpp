// Circuit netlist for the MNA simulator.
//
// A Circuit is a flat netlist of two-terminal elements over named nodes.
// Node 0 is ground ("0" or "gnd"). Elements are appended through the add_*
// functions; the analyses in dcop/transient/ac consume the netlist read-only.
//
// Supported elements: resistors, capacitors (optional initial voltage),
// inductors (optional initial current), independent voltage/current sources
// with arbitrary waveforms, time-controlled switches (for converter phase
// clocks) and voltage-controlled switches with hysteresis (for feedback
// comparators built at circuit level).
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "spice/waveform.hpp"

namespace ivory::spice {

using NodeId = int;
inline constexpr NodeId kGround = 0;

struct Resistor {
  std::string name;
  NodeId a, b;
  double ohms;
};

struct Capacitor {
  std::string name;
  NodeId a, b;
  double farads;
  double v0 = 0.0;   ///< Initial voltage (a relative to b) when `use_ic`.
  bool use_ic = false;
};

struct Inductor {
  std::string name;
  NodeId a, b;
  double henries;
  double i0 = 0.0;   ///< Initial current (flowing a -> b) when `use_ic`.
  bool use_ic = false;
};

struct VSource {
  std::string name;
  NodeId pos, neg;
  Waveform wave;
};

/// Positive current flows from `pos` through the source to `neg` (SPICE
/// convention): a load drawing I from node n is `add_isource(n, gnd, I)`.
struct ISource {
  std::string name;
  NodeId pos, neg;
  Waveform wave;
};

struct Switch {
  enum class Kind { Time, Voltage, TimeVoltage };
  std::string name;
  NodeId a, b;
  double ron, roff;
  Kind kind;

  // Time-controlled: closed when control(t) is true. `next_edge` optionally
  // reports the next toggle instant after t so the transient driver can land
  // steps exactly on switching edges.
  std::function<bool(double)> control;
  std::function<double(double)> next_edge;

  // Voltage-controlled: closes when v(cp)-v(cn) > vth + vhyst/2, opens when
  // it falls below vth - vhyst/2 (evaluated from the previous accepted step).
  NodeId cp = kGround, cn = kGround;
  double vth = 0.0, vhyst = 0.0;
};

class Circuit {
 public:
  /// Returns the id for `name`, creating the node on first use. "0" and
  /// "gnd" map to ground.
  NodeId node(const std::string& name);
  /// Number of nodes including ground.
  int node_count() const { return static_cast<int>(names_.size()); }
  const std::string& node_name(NodeId n) const { return names_.at(static_cast<size_t>(n)); }
  /// Throws InvalidParameter if `name` is unknown.
  NodeId find_node(const std::string& name) const;

  void add_resistor(const std::string& name, NodeId a, NodeId b, double ohms);
  void add_capacitor(const std::string& name, NodeId a, NodeId b, double farads);
  void add_capacitor_ic(const std::string& name, NodeId a, NodeId b, double farads, double v0);
  void add_inductor(const std::string& name, NodeId a, NodeId b, double henries);
  void add_inductor_ic(const std::string& name, NodeId a, NodeId b, double henries, double i0);
  void add_vsource(const std::string& name, NodeId pos, NodeId neg, Waveform wave);
  void add_isource(const std::string& name, NodeId pos, NodeId neg, Waveform wave);
  /// Time-controlled switch, closed when control(t) is true.
  void add_switch(const std::string& name, NodeId a, NodeId b, double ron, double roff,
                  std::function<bool(double)> control,
                  std::function<double(double)> next_edge = nullptr);
  void add_vcswitch(const std::string& name, NodeId a, NodeId b, NodeId cp, NodeId cn, double vth,
                    double vhyst, double ron, double roff);
  /// Gated switch: conducts when control(t) is true AND the hysteretic
  /// voltage condition v(cp)-v(cn) < vth holds (note the inverted sense
  /// versus add_vcswitch: this is an *enable-below* gate, the shape feedback
  /// comparators take in hysteretic converters — fire while the output is
  /// under the reference).
  void add_gated_switch(const std::string& name, NodeId a, NodeId b, double ron, double roff,
                        std::function<bool(double)> control,
                        std::function<double(double)> next_edge, NodeId cp, NodeId cn,
                        double vth, double vhyst);

  const std::vector<Resistor>& resistors() const { return resistors_; }
  const std::vector<Capacitor>& capacitors() const { return capacitors_; }
  const std::vector<Inductor>& inductors() const { return inductors_; }
  const std::vector<VSource>& vsources() const { return vsources_; }
  const std::vector<ISource>& isources() const { return isources_; }
  const std::vector<Switch>& switches() const { return switches_; }

  /// MNA system size: (nodes - 1) voltage unknowns + one current unknown per
  /// voltage source and per inductor.
  int mna_size() const;
  /// Index of the current unknown of voltage source / inductor `k`.
  int vsource_current_index(int k) const;
  int inductor_current_index(int k) const;

 private:
  std::vector<std::string> names_{"0"};
  std::unordered_map<std::string, NodeId> by_name_{{"0", 0}, {"gnd", 0}};

  std::vector<Resistor> resistors_;
  std::vector<Capacitor> capacitors_;
  std::vector<Inductor> inductors_;
  std::vector<VSource> vsources_;
  std::vector<ISource> isources_;
  std::vector<Switch> switches_;
};

}  // namespace ivory::spice
