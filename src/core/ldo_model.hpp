// Static model of digital low-dropout linear regulators (paper Section 3.2).
//
// "Recent design trends have increasingly adopted digital comparators and
// controllers to achieve faster transient responses. Therefore, Ivory models
// linear regulators with a digital feedback path." Efficiency is pinned by
// physics at eta = (Vout/Vin) * eta_I with current efficiency eta_I near 99%
// for moderate loads; ripple comes from the limit cycle of the quantized
// pass-device array.
#pragma once

#include "core/blocks.hpp"
#include "tech/tech.hpp"

namespace ivory::core {

struct LdoDesign {
  tech::Node node = tech::Node::n32;
  tech::CapKind cap_kind = tech::CapKind::MosCap;
  double w_pass_m = 0.0;       ///< Total pass-device width.
  int n_bits = 7;              ///< Pass-array quantization (unary segments = 2^bits).
  double f_clk_hz = 0.0;       ///< Digital feedback sample clock.
  double c_out_f = 0.0;        ///< Output capacitance.
  double i_quiescent_a = 0.0;  ///< Analog bias + reference current.
};

struct LdoAnalysis {
  double vin_v = 0.0, vout_v = 0.0, i_load_a = 0.0;
  double dropout_v = 0.0;       ///< Minimum achievable Vin - Vout at this load.
  double current_efficiency = 0.0;
  double efficiency = 0.0;
  double p_out_w = 0.0;
  double p_pass_w = 0.0;        ///< (Vin - Vout) * I: the fundamental LDO loss.
  double p_quiescent_w = 0.0;
  double p_peripheral_w = 0.0;
  double p_in_w = 0.0;
  double ripple_pp_v = 0.0;     ///< Limit-cycle ripple of the digital loop.
  double area_m2 = 0.0;
};

/// Evaluates the LDO at (vin -> vout, i_load). Throws when the pass device
/// cannot support the load at the commanded dropout (vin - vout smaller than
/// the device's fully-on drop).
LdoAnalysis analyze_ldo(const LdoDesign& d, double vin_v, double vout_v, double i_load_a);

}  // namespace ivory::core
