#include "core/blocks.hpp"

#include "common/error.hpp"

namespace ivory::core {

namespace {
// Gate populations (gate equivalents) for the digital feedback system; sized
// after published digital-LDO / SC-controller breakdowns.
constexpr double kControllerGates = 1500.0;
constexpr double kClockGatesPerPhase = 200.0;
constexpr double kComparatorGateEquiv = 50.0;
constexpr double kActivity = 0.2;          // Average toggling activity.
constexpr double kDriverOverhead = 0.30;   // Tapered-buffer chain vs final stage.
constexpr double kUnitWidth_m = 0.5e-6;    // Unit gate: 0.5 um of W, 4 devices.
}  // namespace

double unit_gate_cap(tech::Node node) {
  const tech::SwitchTech& dev = tech::switch_tech(node, tech::DeviceClass::Core);
  return 4.0 * dev.cgate_per_w_f_m * kUnitWidth_m;
}

PeripheralBudget peripheral_budget(tech::Node node, double f_sw_hz, int n_phases,
                                   double c_gate_total_f, double v_drive_v) {
  require(f_sw_hz > 0.0, "peripheral_budget: f_sw must be positive");
  require(n_phases >= 1, "peripheral_budget: need at least one phase");
  require(c_gate_total_f >= 0.0, "peripheral_budget: gate cap must be non-negative");
  require(v_drive_v > 0.0, "peripheral_budget: drive voltage must be positive");

  const tech::SwitchTech& dev = tech::switch_tech(node, tech::DeviceClass::Core);
  const double vdd = dev.vdd_nom_v;
  const double cg = unit_gate_cap(node);
  // The controller and comparator run once per switching event of any phase.
  const double f_ctrl = f_sw_hz * static_cast<double>(n_phases);

  PeripheralBudget b;
  b.p_controller_w = kControllerGates * kActivity * cg * vdd * vdd * f_ctrl;
  b.p_clockgen_w =
      kClockGatesPerPhase * static_cast<double>(n_phases) * kActivity * cg * vdd * vdd * f_sw_hz;
  b.p_comparator_w = kComparatorGateEquiv * cg * vdd * vdd * f_ctrl;
  b.p_driver_w = kDriverOverhead * c_gate_total_f * v_drive_v * v_drive_v * f_sw_hz;

  const double gate_count = kControllerGates +
                            kClockGatesPerPhase * static_cast<double>(n_phases) +
                            kComparatorGateEquiv * static_cast<double>(n_phases);
  // Each gate: 4 unit devices plus routing (x2).
  b.area_m2 = gate_count * 4.0 * dev.area(kUnitWidth_m) * 2.0;
  return b;
}

}  // namespace ivory::core
