// Shared IVR building blocks: drivers, comparator, digital controller, and
// clock generator.
//
// "Different IVR topologies share many of the same circuit building blocks
// ... By commensurately modeling these shared building blocks across all
// topologies, Ivory guarantees fair comparisons between different
// topologies" (paper Section 3.2). Power and area here are small next to the
// power train, but they matter for transient response and for the
// scalability of distributed designs, so they are modeled explicitly from
// per-node gate energies rather than ignored.
#pragma once

#include "tech/tech.hpp"

namespace ivory::core {

struct PeripheralBudget {
  double p_controller_w = 0.0;
  double p_clockgen_w = 0.0;
  double p_comparator_w = 0.0;
  double p_driver_w = 0.0;  ///< Tapered-buffer overhead beyond the final gate charge.
  double area_m2 = 0.0;

  double total_power() const {
    return p_controller_w + p_clockgen_w + p_comparator_w + p_driver_w;
  }
};

/// Peripheral power/area for a converter in technology `node` switching at
/// `f_sw_hz` with `n_phases` interleaved phases, driving `c_gate_total_f` of
/// final-stage gate capacitance at `v_drive_v`.
///
/// The digital blocks are modeled as gate populations (controller ~1.5k
/// gates, clock generator ~200 gates per phase, comparator ~50 gate-
/// equivalents per sample) with per-node unit gate capacitance; the driver
/// chain adds the classic tapered-buffer factor (~1/(F-1) of the final-stage
/// energy per stage, lumped as 30%).
PeripheralBudget peripheral_budget(tech::Node node, double f_sw_hz, int n_phases,
                                   double c_gate_total_f, double v_drive_v);

/// Energy of one unit (minimum-ish, 0.5 um wide) gate at `node` [F]: the
/// basic C in E = C * Vdd^2 used by all digital block estimates.
double unit_gate_cap(tech::Node node);

}  // namespace ivory::core
