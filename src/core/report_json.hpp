// JSON serializers for the analysis results, sweep reports and diagnostics —
// the machine-readable counterpart of the ASCII tables the CLI prints.
//
// These are the hooks the batch-evaluation service (src/serve) uses to build
// response payloads. Determinism contract: each serializer emits members in
// a fixed order with shortest-round-trip number formatting, so serializing
// the same result twice produces byte-identical JSON — a prerequisite for
// the content-addressed result cache's "cached == cold bytes" guarantee.
// Values that may legitimately be non-finite are not expected here: every
// model boundary is already IVORY_CHECK_FINITE-guarded, and json::write
// throws on NaN/Inf as a last line of defense.
#pragma once

#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/outcome.hpp"
#include "core/dynamic.hpp"
#include "core/optimizer.hpp"
#include "core/pareto.hpp"
#include "core/pds.hpp"
#include "spice/analysis.hpp"

namespace ivory {

/// {"code":..., "site":..., "candidate":..., "detail":...}
json::Value to_json(const Diagnostics& d);

/// {"n_evaluated":..., "n_survived":..., "n_skipped":..., "skips":[...]}
json::Value to_json(const SweepReport& r);

namespace core {

const char* sc_family_name(ScFamily f);

json::Value to_json(const ScDesign& d);
json::Value to_json(const BuckDesign& d);
json::Value to_json(const LdoDesign& d);
json::Value to_json(const DldoDesign& d);

json::Value to_json(const ScAnalysis& a);
json::Value to_json(const ScRegulated& r);
json::Value to_json(const BuckAnalysis& a);
json::Value to_json(const LdoAnalysis& a);
json::Value to_json(const DldoAnalysis& a);

/// Includes the concrete per-topology design ("design" member) so a client
/// can feed an optimizer result straight back into a static or transient
/// request.
json::Value to_json(const DseResult& r);
json::Value to_json(const TwoStageResult& r);
json::Value to_json(const PdsBreakdown& b);

/// Multi-fidelity funnel frontier. Deliberately excluded from the JSON:
/// wall times (screen_s/sim_s) and the cache provenance flags (sim_cached,
/// sim_cache_hits/misses), so a warm-cache re-run serializes byte-identical
/// to the cold run — the invariant the content-addressed serve cache and
/// the incremental re-exploration tests assert on. Cache counters remain
/// observable through funnel_sim_cache_stats().
json::Value to_json(const ParetoPoint& p);
json::Value to_json(const ParetoFront& f);

/// Transient simulation result: simulator-cost counters (steps taken, LU
/// factorizations, keyed-cache hits/evictions/high-water mark) plus per-node
/// settled statistics; the full time/voltage traces only when
/// `include_waveforms` (they dominate the payload). `node_names[i]` labels
/// `r.nodes[i]`.
json::Value to_json(const spice::TranResult& r, const std::vector<std::string>& node_names,
                    bool include_waveforms);

}  // namespace core
}  // namespace ivory
