// Switched-capacitor topology descriptions and the generic two-phase
// charge-multiplier solver (Seeman's method, automated).
//
// A topology is a physical netlist fragment: capacitors with fixed terminal
// nodes, plus switches that each conduct in exactly one of the two phases.
// The charge-multiplier vectors a_c (per capacitor) and a_r (per switch) of
// paper eq. (1) fall out of a linear charge-flow system: KCL at every node in
// each phase, capacitor charge balance across phases, and unit charge
// delivered to the output per cycle. The solver is fully generic — "Ivory's
// built-in, analytical formula calculates the charge multiplier vectors for
// any conversion ratio of these two topologies, automating the tedious
// derivation" — and advanced users can feed it custom topologies.
//
// Node convention: 0 = ground, 1 = Vin, 2 = Vout, >= 3 internal.
#pragma once

#include <string>
#include <vector>

#include "spice/circuit.hpp"

namespace ivory::core {

inline constexpr int kScGnd = 0;
inline constexpr int kScVin = 1;
inline constexpr int kScVout = 2;

struct ScCap {
  int pos, neg;
  /// Steady-state capacitor voltage as a fraction of Vin (all caps in the
  /// series-parallel and ladder families hold Vin/n — the equal-voltage-
  /// rating property that makes them suitable on-chip).
  double ideal_v_ratio;
  /// DC caps hold a rung voltage and never move; fly caps shuttle charge.
  bool is_dc;
};

struct ScSwitch {
  int phase;  ///< 0 = conducts in phase A, 1 = conducts in phase B.
  int a, b;
};

struct ScTopology {
  std::string name;
  int n = 1, m = 1;  ///< Ideal conversion: Vout = (m/n) * Vin.
  int node_count = 3;
  std::vector<ScCap> caps;
  std::vector<ScSwitch> switches;

  double ideal_ratio() const { return static_cast<double>(m) / static_cast<double>(n); }
  /// Allocates a fresh internal node id.
  int new_node() { return node_count++; }
};

/// Series-parallel step-down n:1 (n >= 2): n-1 flying caps charged in series
/// from Vin in phase A, discharged in parallel into Vout in phase B.
/// 3n-2 switches.
ScTopology series_parallel(int n);

/// Ladder n:m (1 <= m < n): rung nodes at k*Vin/n held by n-2 interior DC
/// caps; n-1 flying caps bridge rung (k-1, k) in phase A and (k, k+1) in
/// phase B, pumping charge from the Vin rung down to the Vout rung.
/// 4(n-1) switches. (The cap directly across Vout is the output bypass and
/// is excluded from the charge-flow analysis, per Seeman.)
ScTopology ladder(int n, int m);

/// Dickson (charge-pump) step-down n:1 (n >= 2): n-1 flying caps whose
/// bottom plates are toggled between gnd and Vout while their top plates
/// form a chain from Vin to Vout. Fewer capacitors than the ladder at the
/// same ratio, but caps hold graded voltages (k * Vin/n — NOT equal-rating,
/// so less friendly to on-chip MOS caps; included for completeness and as a
/// third exerciser of the generic charge-flow solver).
ScTopology dickson(int n);

/// Topology family selector. SeriesParallel realizes only n:1 ratios but
/// uses the fewest switches; Ladder realizes any n:m and stresses every
/// switch by only one rung (Vin/n), usually allowing thin-oxide devices.
enum class ScFamily { Auto, SeriesParallel, Ladder, Dickson };

/// Builds the requested family (Auto: series-parallel when m == 1, ladder
/// otherwise). Throws when the family cannot realize the ratio.
ScTopology make_topology(int n, int m, ScFamily family = ScFamily::Auto);

struct ChargeVectors {
  std::vector<double> a_cap;     ///< |charge through cap i| per unit output charge.
  std::vector<double> a_switch;  ///< |charge through switch i| per unit output charge.
  double q_in = 0.0;             ///< Input charge per unit output charge (= m/n ideally).
  double q_out_phase_a = 0.0;    ///< Output charge delivered during phase A.

  double sum_ac() const;
  double sum_ar() const;
};

/// Solves the two-phase charge-flow system. Throws StructuralError when the
/// topology cannot deliver charge to the output (no path) or the flow system
/// is inconsistent.
ChargeVectors charge_vectors(const ScTopology& topo);

/// Everything the static and dynamic models need that depends only on the
/// (n, m, family) triple: the generated topology, its charge-multiplier
/// vectors, and its switch blocking-stress ratios.
struct ScStaticAnalysis {
  ScTopology topo;
  ChargeVectors cv;
  std::vector<double> stress;  ///< switch_stress_ratios(topo).
};

/// Memoized `ScStaticAnalysis` for a built-in family. The sweep engines call
/// the charge-flow solver with the same handful of ratios thousands of
/// times; this cache derives each triple once and shares the result. The
/// returned reference is valid for the program's lifetime and safe to read
/// concurrently (lookups are internally synchronized; entries are immutable
/// once published). `ScFamily::Auto` is resolved to the concrete family
/// before keying, so `Auto` and its resolution share one entry.
const ScStaticAnalysis& sc_static_analysis(int n, int m, ScFamily family = ScFamily::Auto);

/// Ideal node voltages (as fractions of Vin) in each phase, from the
/// closed-switch equalities and capacitor voltage constraints. Used for
/// switch blocking-voltage stress analysis and netlist initial conditions.
struct NodeRatios {
  std::vector<double> phase_a;  ///< Indexed by node id.
  std::vector<double> phase_b;
};
NodeRatios ideal_node_ratios(const ScTopology& topo);

/// Peak off-state blocking voltage of each switch as a fraction of Vin.
std::vector<double> switch_stress_ratios(const ScTopology& topo);

/// Emits a switch-level circuit for validation against the MNA simulator.
/// Capacitors are sized proportionally to |a_c| (total c_fly_tot), switch
/// conductances proportionally to |a_r| (total g_tot), both per Seeman's
/// optimal allocation; capacitors start precharged to their ideal voltages.
struct ScNetlistResult {
  spice::NodeId vin;
  spice::NodeId vout;
};
ScNetlistResult build_sc_netlist(spice::Circuit& c, const ScTopology& topo,
                                 const ChargeVectors& cv, double vin_v, double c_fly_tot,
                                 double g_tot, double f_sw, double c_out, double duty = 0.48);

/// Closed-loop variant: every power switch is gated by a hysteretic
/// comparator that enables switching only while vout < vref (lower-bound /
/// pulse-skipping control — the feedback scheme the cycle-by-cycle model
/// assumes). The input is driven by `vin_wave` so line-regulation scenarios
/// can be simulated. Used to validate the dynamic model's reference and
/// line regulation against circuit-level behaviour.
ScNetlistResult build_sc_netlist_regulated(spice::Circuit& c, const ScTopology& topo,
                                           const ChargeVectors& cv, spice::Waveform vin_wave,
                                           double vref_v, double vhyst_v, double c_fly_tot,
                                           double g_tot, double f_sw, double c_out,
                                           double duty = 0.48);

}  // namespace ivory::core
