#include "core/sc_model.hpp"

#include <cmath>

#include "common/error.hpp"

namespace ivory::core {

namespace {

void check_design(const ScDesign& d) {
  if (!d.custom_topology)
    require(d.n >= 2 && d.m >= 1 && d.m < d.n,
            "ScDesign: need ratio n:m with n >= 2, 1 <= m < n");
  require(d.c_fly_f > 0.0, "ScDesign: c_fly must be positive");
  require(d.g_tot_s > 0.0, "ScDesign: g_tot must be positive");
  require(d.f_sw_hz > 0.0, "ScDesign: f_sw must be positive");
  require(d.n_interleave >= 1, "ScDesign: n_interleave must be >= 1");
  require(d.duty > 0.0 && d.duty <= 0.5, "ScDesign: duty must be in (0, 0.5]");
  require(d.c_out_f >= 0.0, "ScDesign: c_out must be non-negative");
}

// Static (topology-only) analysis of the design, memoized for the built-in
// families; custom topologies are derived per call.
struct OwnedStatic {
  const ScStaticAnalysis* cached = nullptr;
  ScStaticAnalysis owned;
  const ScStaticAnalysis& get() const { return cached ? *cached : owned; }
};

OwnedStatic static_analysis_for(const ScDesign& d) {
  OwnedStatic s;
  if (!d.custom_topology) {
    s.cached = &sc_static_analysis(d.n, d.m, d.family);
    return s;
  }
  s.owned.topo = *d.custom_topology;
  s.owned.cv = charge_vectors(s.owned.topo);
  s.owned.stress = switch_stress_ratios(s.owned.topo);
  return s;
}

// Evaluate at an explicit frequency (regulation modulates frequency).
ScAnalysis analyze_at(const ScDesign& d, double vin_v, double i_load_a, double f_sw) {
  const OwnedStatic st = static_analysis_for(d);
  const ScTopology& topo = st.get().topo;
  const ChargeVectors& cv = st.get().cv;
  const std::vector<double>& stress = st.get().stress;

  const double sum_ac = cv.sum_ac();
  const double sum_ar = cv.sum_ar();

  ScAnalysis a;
  a.vin_v = vin_v;
  a.i_load_a = i_load_a;
  a.vout_ideal_v = topo.ideal_ratio() * vin_v;

  // Interleaving slices the converter N ways at the same frequency: output
  // impedance is unchanged (each slice has C/N, G/N but N run in parallel).
  a.rssl_ohm = sum_ac * sum_ac / (d.c_fly_f * f_sw);
  a.rfsl_ohm = sum_ar * sum_ar / (d.g_tot_s * d.duty);
  a.rout_ohm = std::hypot(a.rssl_ohm, a.rfsl_ohm);
  // Guard before the vout feasibility check below: a NaN output impedance
  // must surface as NonFiniteError, not as a bogus "load collapses the
  // output" domain rejection (NaN fails every comparison).
  IVORY_CHECK_FINITE(a.rout_ohm, "analyze_sc");

  a.vout_v = a.vout_ideal_v - i_load_a * a.rout_ohm;
  require(a.vout_v > 0.0, "analyze_sc: load collapses the output (vout <= 0)");
  a.p_out_w = a.vout_v * i_load_a;
  a.p_conduction_w = i_load_a * i_load_a * a.rout_ohm;

  // Per-switch device selection and gate energy. Conductance allocation is
  // optimal (G_i ~ |a_r,i|); width follows from the selected device class.
  const tech::SwitchTech& core_dev = tech::switch_tech(d.node, tech::DeviceClass::Core);
  const tech::SwitchTech& io_dev = tech::switch_tech(d.node, tech::DeviceClass::Io);
  double p_gate = 0.0, p_sw_leak = 0.0, width_total = 0.0, area_sw = 0.0;
  for (std::size_t i = 0; i < topo.switches.size(); ++i) {
    const double weight = std::max(cv.a_switch[i], 0.02 * sum_ar /
                                                       static_cast<double>(topo.switches.size()));
    const double g_i = d.g_tot_s * weight / sum_ar;
    const double v_block = stress[i] * vin_v;
    const bool needs_io = v_block > core_dev.vmax_v;
    const tech::SwitchTech& dev = needs_io ? io_dev : core_dev;
    const double w_i = dev.ron_w_ohm_m * g_i;  // W = RonW * G.
    width_total += w_i;
    area_sw += dev.area(w_i);
    const double v_drive = dev.vdd_nom_v;
    p_gate += f_sw * dev.cgate(w_i) * v_drive * v_drive;
    // Off half the time, blocking v_block.
    p_sw_leak += 0.5 * dev.leakage(w_i) * v_block;
  }
  a.switch_width_m = width_total;
  a.area_switches_m2 = area_sw;

  // Bottom-plate loss: the parasitic bottom plate of every fly cap swings by
  // about one output voltage each cycle. Modern SC IVRs recover most of that
  // charge with bottom-plate charge recycling (Tong et al., CICC'13 — the
  // paper's ref [4]); the factor keeps the unrecovered quarter.
  constexpr double kBottomPlateResidual = 0.25;
  const tech::CapacitorTech cap = d.capacitor();
  // Capacitor voltage-rating check: graded-voltage families (Dickson) stack
  // k*Vin/n across their upper caps, which on-chip capacitors often cannot
  // take — the reason the paper restricts itself to equal-rating families.
  double worst_cap_ratio = 0.0;
  for (const ScCap& cc : topo.caps) worst_cap_ratio = std::max(worst_cap_ratio, cc.ideal_v_ratio);
  require(worst_cap_ratio * vin_v <= cap.vmax_v * 1.05,
          "analyze_sc: a capacitor's held voltage exceeds the technology's rating");
  const double v_bp = a.vout_ideal_v;
  a.p_bottom_plate_w =
      kBottomPlateResidual * f_sw * cap.bottom_plate_ratio * d.c_fly_f * v_bp * v_bp;

  // Capacitor (gate-oxide) leakage at the cap's held voltage (Vin/n for the
  // built-in families; the topology's own rating for custom networks).
  const double v_cap =
      vin_v * (topo.caps.empty() ? 1.0 : topo.caps.front().ideal_v_ratio);
  a.p_leakage_w = cap.leak_a_per_f * d.c_fly_f * v_cap + p_sw_leak;

  // Shared peripheral blocks. The controller/comparator/clock run at the
  // *design* frequency even when the regulation loop skips pulses (f_sw here
  // may be the lower effective rate) — this fixed overhead is what bends
  // measured SC efficiency below the ideal vout/videal slope at light
  // output. The driver term is scaled back to the effective rate.
  const double c_gate_total = p_gate / (f_sw * core_dev.vdd_nom_v * core_dev.vdd_nom_v);
  const PeripheralBudget per =
      peripheral_budget(d.node, d.f_sw_hz, 2 * d.n_interleave,
                        c_gate_total * (f_sw / d.f_sw_hz), core_dev.vdd_nom_v);
  a.p_gate_w = p_gate;
  a.p_peripheral_w = per.total_power();

  // Input power: ideal transformer charge ratio plus all shunt losses
  // (conduction loss is already inside the vin*(m/n)*I - vout*I gap).
  a.p_in_w = vin_v * topo.ideal_ratio() * i_load_a + a.p_gate_w + a.p_bottom_plate_w +
             a.p_leakage_w + a.p_peripheral_w;
  a.efficiency = a.p_out_w / a.p_in_w;

  // Output ripple: one interleave slice delivers its charge packet every
  // 1/(N*f) seconds into the high-frequency output capacitance.
  a.ripple_pp_v = i_load_a / (static_cast<double>(d.n_interleave) * f_sw) /
                  std::max(sc_output_hf_cap(d), 1e-18);

  a.area_caps_m2 = cap.area(d.c_fly_f) + (d.c_out_f > 0.0 ? cap.area(d.c_out_f) : 0.0);
  // peripheral_budget already replicates the clock/comparator per phase.
  a.area_peripheral_m2 = per.area_m2;
  // 15% wiring/keep-out overhead.
  a.area_m2 = 1.15 * (a.area_caps_m2 + a.area_switches_m2 + a.area_peripheral_m2);
  IVORY_CHECK_FINITE(a.efficiency, "analyze_sc");
  IVORY_CHECK_FINITE(a.ripple_pp_v, "analyze_sc");
  IVORY_CHECK_FINITE(a.area_m2, "analyze_sc");
  return a;
}

}  // namespace

ScAnalysis analyze_sc(const ScDesign& d, double vin_v, double i_load_a) {
  check_design(d);
  IVORY_CHECK_FINITE(vin_v, "analyze_sc");
  IVORY_CHECK_FINITE(i_load_a, "analyze_sc");
  require(vin_v > 0.0, "analyze_sc: vin must be positive");
  require(i_load_a > 0.0, "analyze_sc: load current must be positive");
  return analyze_at(d, vin_v, i_load_a, d.f_sw_hz);
}

ScRegulated analyze_sc_regulated(const ScDesign& d, double vin_v, double vout_target_v,
                                 double i_load_a) {
  check_design(d);
  IVORY_CHECK_FINITE(vin_v, "analyze_sc_regulated");
  IVORY_CHECK_FINITE(vout_target_v, "analyze_sc_regulated");
  IVORY_CHECK_FINITE(i_load_a, "analyze_sc_regulated");
  require(vin_v > 0.0, "analyze_sc_regulated: vin must be positive");
  require(vout_target_v > 0.0, "analyze_sc_regulated: vout target must be positive");
  require(i_load_a > 0.0, "analyze_sc_regulated: load current must be positive");

  const OwnedStatic st = static_analysis_for(d);
  const ChargeVectors& cv = st.get().cv;
  const double sum_ac = cv.sum_ac();
  const double sum_ar = cv.sum_ar();
  const double vout_ideal = st.get().topo.ideal_ratio() * vin_v;
  const double rfsl = sum_ar * sum_ar / (d.g_tot_s * d.duty);
  // A NaN charge-multiplier sum would sail through the feasibility
  // comparisons below (NaN compares false) and reach analyze_at; stop it
  // here with the proper classification.
  IVORY_CHECK_FINITE(rfsl, "analyze_sc_regulated");

  ScRegulated out;
  const double r_needed = (vout_ideal - vout_target_v) / i_load_a;
  // Feasibility: R_out is sqrt(rssl^2 + rfsl^2) >= rfsl, and rssl can only be
  // *raised* by slowing down from the design frequency.
  const double rssl_at_design = sum_ac * sum_ac / (d.c_fly_f * d.f_sw_hz);
  const double r_min = std::hypot(rssl_at_design, rfsl);
  if (r_needed < r_min || vout_target_v >= vout_ideal) return out;  // Past the cliff.

  const double rssl_needed = std::sqrt(r_needed * r_needed - rfsl * rfsl);
  const double f_used = sum_ac * sum_ac / (d.c_fly_f * rssl_needed);
  IVORY_CHECK_FINITE(f_used, "analyze_sc_regulated");
  out.feasible = true;
  out.f_sw_used_hz = f_used;
  out.analysis = analyze_at(d, vin_v, i_load_a, f_used);
  return out;
}

double sc_output_hf_cap(const ScDesign& d) {
  // Fly-capacitance fraction facing the output, averaged over the two
  // phases. Series-parallel n:1: the parallel phase presents all of C, the
  // series phase a chain of n-1 slices in series (C/(n-1)^2); for 2:1 that
  // makes the FULL fly cap effective at all times (one terminal is always on
  // a stiff rail). Ladder topologies keep roughly the bottom-rung half.
  // Validated against switch-level simulation in the Fig. 9(b) bench.
  double kappa = 0.5;
  const bool series_parallel =
      !d.custom_topology &&
      (d.family == ScFamily::SeriesParallel || (d.family == ScFamily::Auto && d.m == 1));
  if (series_parallel) {
    const double chain = static_cast<double>(d.n - 1);
    kappa = 0.5 * (1.0 + 1.0 / (chain * chain));
  }
  return d.c_out_f + kappa * d.c_fly_f;
}

}  // namespace ivory::core
