#include "core/pds.hpp"

#include <cmath>
#include <string>

#include "common/error.hpp"
#include "common/fault.hpp"

namespace ivory::core {

namespace {

// Extra core power burned to run at v_actual instead of v_nom: dynamic power
// scales with V^2 at fixed frequency (the paper's case study compares
// configurations "without any performance loss", i.e. same clocks).
double core_power_at(double p_nominal_w, double v_nom_v, double v_actual_v) {
  const double ratio = v_actual_v / v_nom_v;
  return p_nominal_w * ratio * ratio;
}

double series_pdn_resistance(const pdn::PdnParams& p) {
  return p.board.r_ohm + p.package.r_ohm + p.c4.r_ohm;
}

void check_inputs(const SystemParams& sys, double v_core_nom_v, double guardband_v) {
  IVORY_CHECK_FINITE(v_core_nom_v, "evaluate_pds");
  IVORY_CHECK_FINITE(guardband_v, "evaluate_pds");
  IVORY_CHECK_FINITE(sys.p_load_w, "evaluate_pds");
  require(v_core_nom_v > 0.0, "evaluate_pds: core voltage must be positive");
  require(guardband_v >= 0.0, "evaluate_pds: guardband must be non-negative");
  require(sys.p_load_w > 0.0, "evaluate_pds: load power must be positive");
}

}  // namespace

PdsBreakdown evaluate_pds_offchip(const SystemParams& sys, const pdn::PdnParams& pdn_params,
                                  double v_core_nom_v, double guardband_v) {
  check_inputs(sys, v_core_nom_v, guardband_v);

  PdsBreakdown b;
  b.v_core_actual_v = v_core_nom_v + guardband_v + fault::inject("pds");
  b.p_core_useful_w = sys.p_load_w;
  const double p_core = core_power_at(sys.p_load_w, v_core_nom_v, b.v_core_actual_v);
  b.p_guardband_w = p_core - sys.p_load_w;

  // The full core current crosses the whole network at core voltage.
  const double i_core = p_core / b.v_core_actual_v;
  b.p_pdn_ir_w = i_core * i_core * series_pdn_resistance(pdn_params);
  b.p_grid_ir_w = i_core * i_core * pdn_params.grid_r_ohm;

  const double p_vrm_out = p_core + b.p_pdn_ir_w + b.p_grid_ir_w;
  const pdn::VrmModel vrm = pdn::VrmModel::board_vrm(b.v_core_actual_v, i_core);
  b.p_total_w = vrm.input_power(p_vrm_out);
  b.p_vrm_loss_w = b.p_total_w - p_vrm_out;
  b.efficiency = b.p_core_useful_w / b.p_total_w;
  IVORY_CHECK_FINITE(b.p_total_w, "evaluate_pds_offchip");
  IVORY_CHECK_FINITE(b.efficiency, "evaluate_pds_offchip");
  return b;
}

PdsBreakdown evaluate_pds_ivr(const SystemParams& sys, const pdn::PdnParams& pdn_params,
                              const DseResult& ivr, double v_core_nom_v, double guardband_v) {
  check_inputs(sys, v_core_nom_v, guardband_v);
  require(ivr.feasible, "evaluate_pds_ivr: IVR design is infeasible");
  require(ivr.efficiency > 0.0 && ivr.efficiency < 1.0,
          "evaluate_pds_ivr: IVR efficiency out of range");

  PdsBreakdown b;
  b.v_core_actual_v = v_core_nom_v + guardband_v + fault::inject("pds");
  b.p_core_useful_w = sys.p_load_w;
  const double p_core = core_power_at(sys.p_load_w, v_core_nom_v, b.v_core_actual_v);
  b.p_guardband_w = p_core - sys.p_load_w;

  // Output-side grid: each of n domains carries 1/n of the current over its
  // local slice, so total grid loss scales as 1/n.
  const double i_core = p_core / b.v_core_actual_v;
  b.p_grid_ir_w =
      i_core * i_core * pdn_params.grid_r_ohm / static_cast<double>(ivr.n_distributed);

  const double p_ivr_out = p_core + b.p_grid_ir_w;
  const double p_ivr_in = p_ivr_out / ivr.efficiency;
  b.p_ivr_loss_w = p_ivr_in - p_ivr_out;

  // Input side crosses the PDN at the high rail: much lower current.
  const double i_in = p_ivr_in / sys.vin_v;
  b.p_pdn_ir_w = i_in * i_in * series_pdn_resistance(pdn_params);

  const double p_vrm_out = p_ivr_in + b.p_pdn_ir_w;
  const pdn::VrmModel vrm = pdn::VrmModel::board_vrm(sys.vin_v, i_in);
  b.p_total_w = vrm.input_power(p_vrm_out);
  b.p_vrm_loss_w = b.p_total_w - p_vrm_out;
  b.efficiency = b.p_core_useful_w / b.p_total_w;
  IVORY_CHECK_FINITE(b.p_total_w, "evaluate_pds_ivr");
  IVORY_CHECK_FINITE(b.efficiency, "evaluate_pds_ivr");
  return b;
}

EvalOutcome<PdsBreakdown> try_evaluate_pds_offchip(const SystemParams& sys,
                                                   const pdn::PdnParams& pdn_params,
                                                   double v_core_nom_v, double guardband_v) {
  return quarantine("evaluate_pds_offchip", "off-chip VRM PDS", [&] {
    return evaluate_pds_offchip(sys, pdn_params, v_core_nom_v, guardband_v);
  });
}

EvalOutcome<PdsBreakdown> try_evaluate_pds_ivr(const SystemParams& sys,
                                               const pdn::PdnParams& pdn_params,
                                               const DseResult& ivr, double v_core_nom_v,
                                               double guardband_v) {
  return quarantine("evaluate_pds_ivr",
                    "IVR PDS @ dist " + std::to_string(ivr.n_distributed), [&] {
                      return evaluate_pds_ivr(sys, pdn_params, ivr, v_core_nom_v, guardband_v);
                    });
}

}  // namespace ivory::core
