// Multi-fidelity DSE funnel (ROADMAP open item 2): cheap-screen a dense
// candidate space with closed-form static surrogates, extract the exact
// Pareto front over efficiency/area/ripple, then run the full dynamic
// (cycle + in-cycle) simulation only on the frontier.
//
// Stage boundaries:
//   1. *Screen* — millions of candidates, streamed through `parallel_for`
//      in fixed-size blocks so memory stays bounded. Each candidate is a
//      pure closed-form evaluation of the memoized static models (the SC
//      and buck screens mirror analyze_sc_regulated / analyze_buck term by
//      term with per-plan precomputed coefficients; the small LDO/DLDO
//      spaces call the real analyzers directly). Per-candidate quarantine:
//      a candidate whose evaluation throws becomes a recorded skip, never
//      an aborted sweep.
//   2. *Extract* — exact non-dominated filtering. Block-local fronts are
//      built incrementally in candidate-index order and merged serially in
//      block order, so the front is byte-identical at any thread count.
//      Tie-break: duplicates and dominated candidates always lose to the
//      lowest candidate index.
//   3. *Simulate* — the surviving dozens of frontier points are re-derived
//      through the exact static models and driven through the combined
//      cycle + in-cycle dynamic response on a deterministic load-step
//      trace. Each simulation flows through a content-addressed cache
//      keyed by the canonical JSON of its inputs, so incremental
//      re-exploration (one SystemParams field changed) re-simulates only
//      frontier points whose inputs actually changed.
//
// Dominance: candidate a dominates b when a is no worse in every enabled
// objective (efficiency maximized; area and ripple minimized) and strictly
// better in at least one. A candidate equal to an earlier one in every
// enabled objective is a duplicate and is dropped (earliest index kept).
#pragma once

#include <cstdint>
#include <vector>

#include "common/outcome.hpp"
#include "core/optimizer.hpp"

namespace ivory::core {

/// Which objectives participate in dominance. Disabling one collapses the
/// front along that axis (e.g. efficiency+area only).
struct FunnelObjectives {
  bool efficiency = true;  ///< maximized
  bool area = true;        ///< minimized
  bool ripple = true;      ///< minimized
};

/// Grid density and stage policy of the funnel. The defaults screen on the
/// order of 10^6 candidates; `scaled()` shrinks or grows every axis for
/// smoke tiers and serve requests.
struct FunnelSpec {
  // SC axes: capacitor area share x output-decap share x interleave.
  int sc_split_steps = 48;     ///< cap_frac in [0.50, 0.98]
  int sc_out_frac_steps = 12;  ///< c_out share of cap area in [0.05, 0.60]
  // Buck axes: inductor share x switch utilization x log-spaced fsw.
  int buck_l_frac_steps = 16;  ///< l_frac in [0.02, 0.70]
  int buck_util_steps = 12;    ///< sw_util in [0.03, 1.00]
  int buck_fsw_steps = 40;     ///< f_sw log-spaced in [2 MHz, 1 GHz]
  // LDO axes: decap share x pass-device drop fraction.
  int ldo_decap_steps = 48;    ///< decap share in [0.20, 0.80]
  int ldo_drop_steps = 12;     ///< fully-on drop / headroom in [0.08, 0.45]
  // DLDO axes (per bits x comparator-count variant): clock margin x decap.
  int dldo_clock_steps = 10;   ///< clock margin in [1.0, 3.0]
  int dldo_decap_steps = 8;    ///< decap share in [0.25, 0.75]
  // Hybrid delivery: IVR share of the load in [0.55, 1.0]; the remainder
  // rides an off-chip board VRM (h = 1.0 is always included).
  int hybrid_steps = 4;

  FunnelObjectives objectives;
  std::size_t front_cap = 32;      ///< keep the best-by-efficiency N points
  std::size_t block = std::size_t{1} << 14;  ///< screening block size
  bool simulate = true;            ///< run stage 3 on the frontier
  double sim_duration_s = 1e-6;    ///< load-step trace length
  double sim_dt_s = 1e-9;          ///< trace sample interval

  /// Every grid axis multiplied by `density` (minimum 2 steps per swept
  /// axis, 1 for the hybrid axis). density < 1 shrinks, > 1 refines.
  FunnelSpec scaled(double density) const;
};

/// Stage-1 fidelity metrics of one candidate (the dominance coordinates).
struct ScreenMetrics {
  double efficiency = 0.0;  ///< system efficiency (IVR + VRM share if hybrid)
  double area_m2 = 0.0;     ///< total area across distributed IVRs
  double ripple_pp_v = 0.0; ///< IVR rail static ripple
};

/// True when `a` dominates `b`: no worse in every enabled objective and
/// strictly better in at least one.
bool dominates(const ScreenMetrics& a, const ScreenMetrics& b,
               const FunnelObjectives& obj = {});

/// Exact non-dominated extraction over `pts`: returns the positions of the
/// front members in ascending position order. Duplicates keep the earliest
/// position — the result is invariant to appending dominated points and is
/// what the block-streamed screening computes incrementally.
std::vector<std::size_t> pareto_filter(const std::vector<ScreenMetrics>& pts,
                                       const FunnelObjectives& obj = {});

/// One frontier point: the candidate's screen metrics, its exact static
/// re-derivation, and (when simulated) the dynamic load-step response.
struct ParetoPoint {
  std::uint64_t index = 0;     ///< global candidate index (the tie-break key)
  double ivr_load_frac = 1.0;  ///< hybrid delivery: IVR share of the load
  ScreenMetrics screen;
  DseResult design;            ///< exact static re-evaluation
  bool simulated = false;
  bool sim_cached = false;     ///< stage-3 result came from the cache
  double droop_pp_v = 0.0;     ///< settled peak-to-peak of the step response
  double v_mean_v = 0.0;       ///< mean output over the settled window
};

struct FunnelStats {
  std::uint64_t n_screened = 0;   ///< stage-1 candidates evaluated
  std::uint64_t n_feasible = 0;   ///< stage-1 candidates meeting constraints
  std::uint64_t n_blocks = 0;
  std::uint64_t frontier_size = 0;
  std::uint64_t sim_cache_hits = 0;
  std::uint64_t sim_cache_misses = 0;
  double screen_s = 0.0;  ///< stage 1+2 wall time
  double sim_s = 0.0;     ///< stage 3 wall time (0 when simulate=false)
};

/// The extracted front, ordered by screen efficiency descending with the
/// candidate index as the deterministic tie-break.
struct ParetoFront {
  std::vector<ParetoPoint> points;
  FunnelStats stats;
};

/// Runs the three-stage funnel. Skips (quarantined candidates at any stage)
/// are recorded in `report`; throws an aggregated SweepError only when every
/// screened candidate died. Byte-identical at any thread count.
ParetoFront funnel_explore(const SystemParams& sys, const FunnelSpec& spec = {},
                           SweepReport* report = nullptr);

/// Funnel-backed explore(): the frontier's exact designs sorted by `target`
/// (feasible first), drop-in compatible with the exhaustive overload.
std::vector<DseResult> explore(const SystemParams& sys, const FunnelSpec& spec,
                               OptTarget target = OptTarget::Efficiency,
                               SweepReport* report = nullptr);

/// Process-wide stage-3 simulation cache introspection (the counters the
/// incremental re-exploration tests assert on).
struct FunnelCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t entries = 0;
};
FunnelCacheStats funnel_sim_cache_stats();
void funnel_sim_cache_clear();

}  // namespace ivory::core
