#include "core/optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>
#include <tuple>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/optimize.hpp"
#include "common/outcome.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/trace.hpp"

namespace ivory::core {

const char* topology_name(IvrTopology t) {
  switch (t) {
    case IvrTopology::SwitchedCapacitor: return "SC";
    case IvrTopology::Buck: return "buck";
    case IvrTopology::LinearRegulator: return "LDO";
    case IvrTopology::DigitalLdo: return "DLDO";
  }
  return "?";
}

std::vector<std::pair<int, int>> candidate_sc_ratios(double vin_v, double vout_v) {
  require(vin_v > vout_v && vout_v > 0.0, "candidate_sc_ratios: need vin > vout > 0");
  std::vector<std::pair<int, int>> out;
  for (int n = 2; n <= 6; ++n) {
    for (int m = 1; m < n; ++m) {
      if (std::gcd(n, m) != 1) continue;
      const double videal = vin_v * static_cast<double>(m) / static_cast<double>(n);
      // Need headroom for the I*R_out regulation drop.
      if (videal < vout_v * 1.02) continue;
      out.emplace_back(n, m);
    }
  }
  std::sort(out.begin(), out.end(), [&](const auto& a, const auto& b) {
    return static_cast<double>(a.second) / a.first < static_cast<double>(b.second) / b.first;
  });
  return out;
}

void check_system_params(const SystemParams& sys) {
  require(sys.area_max_m2 > 0.0, "SystemParams: area budget must be positive");
  require(sys.p_load_w > 0.0, "SystemParams: load power must be positive");
  require(sys.vin_v > sys.vout_v && sys.vout_v > 0.0, "SystemParams: need vin > vout > 0");
  require(sys.max_distributed >= 1, "SystemParams: max_distributed must be >= 1");
  require(sys.ripple_max_v > 0.0, "SystemParams: ripple budget must be positive");
}

namespace {

// Sort predicate shared by explore() and the funnel-backed overload:
// feasible designs first, then strictly better under `target`. Strict-weak;
// stable_sort therefore keeps the serial sweep order on ties.
bool dse_better(const DseResult& a, const DseResult& b, OptTarget target) {
  if (a.feasible != b.feasible) return a.feasible;
  switch (target) {
    case OptTarget::Efficiency: return a.efficiency > b.efficiency;
    case OptTarget::Area: return a.area_m2 < b.area_m2;
    case OptTarget::Noise: return a.ripple_pp_v < b.ripple_pp_v;
  }
  return false;
}

// Deterministic best-point reduction: candidates arrive in a fixed index
// order (the flattened serial nesting order), and a later point replaces the
// incumbent only on a strict improvement — exactly the serial loop's rule, so
// the winner is independent of how many threads computed the candidates.
DseResult reduce_best(const std::vector<DseResult>& candidates, DseResult init) {
  DseResult best = std::move(init);
  for (const DseResult& r : candidates)
    if (r.feasible && (!best.feasible || r.efficiency > best.efficiency)) best = r;
  return best;
}

// --- Switched capacitor ------------------------------------------------------

// Die area consumed per siemens of total switch conductance, given the
// optimal per-switch allocation and per-switch device class.
double sc_area_per_conductance(const ScTopology& topo, const ChargeVectors& cv,
                               const std::vector<double>& stress, double vin_v,
                               tech::Node node) {
  const tech::SwitchTech& core_dev = tech::switch_tech(node, tech::DeviceClass::Core);
  const tech::SwitchTech& io_dev = tech::switch_tech(node, tech::DeviceClass::Io);
  const double sum_ar = cv.sum_ar();
  double k = 0.0;
  for (std::size_t i = 0; i < topo.switches.size(); ++i) {
    const double share = std::max(cv.a_switch[i],
                                  0.02 * sum_ar / static_cast<double>(topo.switches.size())) /
                         sum_ar;
    const tech::SwitchTech& dev =
        stress[i] * vin_v > core_dev.vmax_v ? io_dev : core_dev;
    k += share * dev.ron_w_ohm_m * dev.area_per_w_m;  // W = RonW * G; area = W * pitch.
  }
  return k;
}

// Consumes the quarantined per-candidate outcomes of one sweep in index
// order: survivors are collected, skips recorded in `report`. When every
// candidate died, throws the aggregated SweepError (after merging into
// `report` so the caller still sees the individual skips).
std::vector<DseResult> collect_survivors(const char* sweep,
                                         const std::vector<EvalOutcome<DseResult>>& outcomes,
                                         SweepReport& report) {
  SweepReport local;
  std::vector<DseResult> survivors;
  survivors.reserve(outcomes.size());
  for (const EvalOutcome<DseResult>& o : outcomes) {
    if (o.ok()) {
      local.record_survivor();
      survivors.push_back(o.value());
    } else {
      local.record_skip(o.diagnostics());
    }
  }
  report.merge(local);
  if (local.n_survived == 0 && local.n_evaluated > 0) throw_all_failed(sweep, local);
  return survivors;
}

DseResult optimize_sc(const SystemParams& sys, int n_dist, SweepReport& report) {
  const double area_ivr = sys.area_max_m2 / n_dist;
  const double i_ivr = sys.p_load_w / sys.vout_v / n_dist;
  const tech::CapacitorTech cap = tech::capacitor_tech(sys.node, sys.cap_kind);

  DseResult bestr;
  bestr.topology = IvrTopology::SwitchedCapacitor;
  bestr.n_distributed = n_dist;

  std::vector<std::pair<std::pair<int, int>, ScFamily>> variants;
  for (const auto& ratio : candidate_sc_ratios(sys.vin_v, sys.vout_v)) {
    // The ladder's one-rung switch stress often admits thin-oxide devices
    // where series-parallel needs thick-oxide; try both families for n:1.
    variants.push_back({ratio, ScFamily::Ladder});
    if (ratio.second == 1) variants.push_back({ratio, ScFamily::SeriesParallel});
  }

  // Every variant is an independent pure task: fan the ratio x family grid
  // out over the pool and reduce the per-variant winners in index order.
  // Each variant evaluates under quarantine — one ill-conditioned ratio
  // becomes a recorded skip, not an aborted sweep.
  const std::vector<EvalOutcome<DseResult>> variant_best =
      par::parallel_map<EvalOutcome<DseResult>>(variants.size(), [&](std::size_t vi) {
    const auto& [vratio, vfamily] = variants[vi];
    const std::string candidate = std::to_string(vratio.first) + ":" +
                                  std::to_string(vratio.second) +
                                  (vfamily == ScFamily::SeriesParallel ? " series-parallel"
                                                                       : " ladder") +
                                  " SC @ dist " + std::to_string(n_dist);
    return quarantine("optimize_sc", candidate, [&]() -> DseResult {
    const auto& [ratio, family] = variants[vi];
    const auto& [n, m] = ratio;
    const ScStaticAnalysis& st = sc_static_analysis(n, m, family);
    const ScTopology& topo = st.topo;
    const ChargeVectors& cv = st.cv;
    const std::vector<double>& stress = st.stress;
    const double sum_ac = cv.sum_ac();
    const double sum_ar = cv.sum_ar();
    const double k_area_g = sc_area_per_conductance(topo, cv, stress, sys.vin_v, sys.node);
    const double videal = topo.ideal_ratio() * sys.vin_v;
    // The converter must hold regulation at the worst-case load peak, not
    // the average (workload traces swing to ~2.5x the mean); at average load
    // the hysteretic controller skips pulses, i.e. runs at a lower effective
    // frequency.
    constexpr double kPeakLoadFactor = 2.5;
    const double r_needed_peak = (videal - sys.vout_v) / (kPeakLoadFactor * i_ivr);

    // At a fixed (C, G) split, peak-load regulation pins the maximum switching
    // frequency; the only free variable is the capacitor share of the area
    // budget.
    auto evaluate_split = [&](double cap_frac) -> DseResult {
      DseResult r;
      r.topology = IvrTopology::SwitchedCapacitor;
      r.n_distributed = n_dist;
      const double usable = area_ivr / 1.15;  // Mirror the wiring overhead.
      const double area_caps = cap_frac * usable;
      const double area_sw = (1.0 - cap_frac) * usable * 0.95;  // 5% peripheral.
      const double c_total = area_caps * cap.density_f_m2;
      const double c_fly = 0.85 * c_total;
      const double c_out = 0.15 * c_total;
      const double g_tot = area_sw / k_area_g;

      const double rfsl = sum_ar * sum_ar / (g_tot * 0.5);
      if (r_needed_peak <= rfsl * 1.02) return r;  // Cannot regulate: FSL floor too high.
      const double rssl_peak = std::sqrt(r_needed_peak * r_needed_peak - rfsl * rfsl);
      const double f_max = sum_ac * sum_ac / (c_fly * rssl_peak);
      if (f_max < 1e5 || f_max > 5e9) return r;  // Outside sane switching range.

      ScDesign d;
      d.node = sys.node;
      d.cap_kind = sys.cap_kind;
      d.n = n;
      d.m = m;
      d.family = family;
      d.c_fly_f = c_fly;
      d.c_out_f = c_out;
      d.g_tot_s = g_tot;
      d.f_sw_hz = f_max;
      d.duty = 0.5;
      d.n_interleave = 1;

      // At the average load, pulse skipping lowers the effective frequency.
      const ScRegulated reg0 = analyze_sc_regulated(d, sys.vin_v, sys.vout_v, i_ivr);
      if (!reg0.feasible) return r;
      // Interleave to meet the ripple budget at the operating frequency.
      const double c_hf = sc_output_hf_cap(d);
      const double n_il = std::ceil(i_ivr / (reg0.f_sw_used_hz * c_hf * sys.ripple_max_v));
      d.n_interleave = static_cast<int>(std::clamp(n_il, 1.0, 64.0));
      const ScRegulated reg = analyze_sc_regulated(d, sys.vin_v, sys.vout_v, i_ivr);
      if (!reg.feasible) return r;

      const ScAnalysis& a = reg.analysis;
      r.feasible = a.ripple_pp_v <= sys.ripple_max_v * 1.05 && a.area_m2 <= area_ivr * 1.02;
      r.efficiency = a.efficiency;
      r.ripple_pp_v = a.ripple_pp_v;
      r.f_sw_hz = reg.f_sw_used_hz;
      r.area_m2 = a.area_m2 * n_dist;
      r.n_interleave = d.n_interleave;
      r.sc = d;
      r.label = std::to_string(n) + ":" + std::to_string(m) + " SC";
      return r;
    };

    // Feasibility cliffs make the objective non-unimodal: coarse grid first,
    // then a golden refinement around the best cell.
    auto objective = [&](double x) {
      const DseResult r = evaluate_split(x);
      return r.feasible ? r.efficiency : -1.0;
    };
    double best_x = 0.5, best_f = objective(0.5);
    for (int i = 1; i <= 16; ++i) {
      const double x = 0.50 + 0.48 * i / 16.0;
      const double fx = objective(x);
      if (fx > best_f) {
        best_f = fx;
        best_x = x;
      }
    }
    const ScalarOptimum opt = golden_maximize(objective, std::max(0.50, best_x - 0.03),
                                              std::min(0.98, best_x + 0.03), 1e-4);
    return evaluate_split(opt.f > best_f ? opt.x : best_x);
    });
  });
  return reduce_best(collect_survivors("optimize_sc", variant_best, report), std::move(bestr));
}

// --- Buck --------------------------------------------------------------------

DseResult optimize_buck(const SystemParams& sys, int n_dist, SweepReport& report) {
  const double area_ivr = sys.area_max_m2 / n_dist;
  const double i_ivr = sys.p_load_w / sys.vout_v / n_dist;
  const tech::CapacitorTech cap = tech::capacitor_tech(sys.node, sys.cap_kind);
  const tech::InductorTech& ind = tech::inductor_tech(sys.inductor);
  const tech::SwitchTech& core_dev = tech::switch_tech(sys.node, tech::DeviceClass::Core);
  const tech::SwitchTech& dev = sys.vin_v > core_dev.vmax_v
                                    ? tech::switch_tech(sys.node, tech::DeviceClass::Io)
                                    : core_dev;

  DseResult bestr;
  bestr.topology = IvrTopology::Buck;
  bestr.n_distributed = n_dist;

  const double duty0 = sys.vout_v / sys.vin_v;
  // The area budget is a ceiling, not a quota: oversized switches burn gate
  // charge, so the switch-area utilization is itself a design variable.
  auto evaluate = [&](int n_phases, double l_frac, double sw_util, double f_sw) -> DseResult {
    DseResult r;
    r.topology = IvrTopology::Buck;
    r.n_distributed = n_dist;
    const double usable = area_ivr / 1.15;
    const double area_l = l_frac * usable;
    const double rest = (1.0 - l_frac) * usable;
    const double area_sw = 0.4 * rest * sw_util;
    const double area_c = 0.55 * rest;  // 5% peripheral.

    const double l_total = area_l * ind.density_h_m2;
    const double l_phase = l_total / n_phases;
    const double c_out = area_c * cap.density_f_m2;
    const double w_total = area_sw / dev.area_per_w_m;
    // Conduction-optimal high/low split at the nominal duty.
    const double sd = std::sqrt(duty0), si = std::sqrt(1.0 - duty0);
    const double w_hs = w_total / n_phases * sd / (sd + si);
    const double w_ls = w_total / n_phases * si / (sd + si);
    if (l_phase <= 0.0 || c_out <= 0.0 || w_hs <= 0.0) return r;

    BuckDesign d;
    d.node = sys.node;
    d.inductor = sys.inductor;
    d.cap_kind = sys.cap_kind;
    d.l_per_phase_h = l_phase;
    d.f_sw_hz = f_sw;
    d.n_phases = n_phases;
    d.w_high_m = w_hs;
    d.w_low_m = w_ls;
    d.c_out_f = c_out;
    try {
      const BuckAnalysis a = analyze_buck(d, sys.vin_v, sys.vout_v, i_ivr);
      // Require CCM: ripple current below twice the per-phase DC current.
      if (a.i_ripple_phase_a > 2.0 * i_ivr / n_phases) return r;
      r.feasible = a.ripple_pp_v <= sys.ripple_max_v && a.area_die_m2 <= area_ivr * 1.02;
      r.efficiency = a.efficiency;
      r.ripple_pp_v = a.ripple_pp_v;
      r.f_sw_hz = f_sw;
      r.area_m2 = a.area_m2 * n_dist;
      r.n_interleave = n_phases;
      r.buck = d;
      r.label = "buck";
    } catch (const InvalidParameter&) {
      // Unreachable operating point for this sizing: a domain rejection, so
      // the point stays in the sweep as infeasible. Anything else (numerical
      // failure, non-finite guard) propagates to the per-candidate
      // quarantine below instead of silently zeroing the point — the old
      // catch-all here let one NumericalError abort the whole sweep once it
      // escaped the pool.
    }
    return r;
  };

  // Flatten the phase x inductor-fraction x switch-utilization grid in the
  // serial nesting order; each point's frequency sweep is an independent
  // task for the pool.
  std::vector<std::tuple<int, double, double>> grid;
  for (int n_phases : {2, 4, 8, 16})
    for (double l_frac : {0.02, 0.03, 0.05, 0.10, 0.18, 0.25, 0.40, 0.55, 0.70})
      for (double sw_util : {0.03, 0.07, 0.15, 0.3, 0.6, 1.0})
        grid.emplace_back(n_phases, l_frac, sw_util);

  const std::vector<EvalOutcome<DseResult>> grid_best =
      par::parallel_map<EvalOutcome<DseResult>>(grid.size(), [&](std::size_t gi) {
        const auto& [n_phases, l_frac, sw_util] = grid[gi];
        const std::string candidate = "buck " + std::to_string(n_phases) + "-phase l_frac " +
                                      std::to_string(l_frac) + " sw_util " +
                                      std::to_string(sw_util) + " @ dist " +
                                      std::to_string(n_dist);
        return quarantine("optimize_buck", candidate, [&, n_phases, l_frac, sw_util] {
          const ScalarOptimum opt = log_grid_minimize(
              [&](double f) {
                const DseResult r = evaluate(n_phases, l_frac, sw_util, f);
                return r.feasible ? 1.0 - r.efficiency : 2.0;
              },
              2e6, 1e9, 48);
          return evaluate(n_phases, l_frac, sw_util, opt.x);
        });
      });
  return reduce_best(collect_survivors("optimize_buck", grid_best, report), std::move(bestr));
}

// --- LDO ---------------------------------------------------------------------

DseResult optimize_ldo(const SystemParams& sys, int n_dist, SweepReport& report) {
  const double area_ivr = sys.area_max_m2 / n_dist;
  const double i_ivr = sys.p_load_w / sys.vout_v / n_dist;
  const tech::CapacitorTech cap = tech::capacitor_tech(sys.node, sys.cap_kind);
  const tech::SwitchTech& core_dev = tech::switch_tech(sys.node, tech::DeviceClass::Core);
  const tech::SwitchTech& dev = sys.vin_v > core_dev.vmax_v
                                    ? tech::switch_tech(sys.node, tech::DeviceClass::Io)
                                    : core_dev;

  DseResult r;
  r.topology = IvrTopology::LinearRegulator;
  r.n_distributed = n_dist;
  r.label = "LDO";

  try {
    LdoDesign d;
    d.node = sys.node;
    d.cap_kind = sys.cap_kind;
    d.n_bits = 8;
    // Pass device sized so the fully-on drop is 20% of the available headroom.
    const double r_pass = 0.2 * (sys.vin_v - sys.vout_v) / i_ivr;
    d.w_pass_m = dev.ron_w_ohm_m / r_pass;
    // Half the area goes to output decap; clock chosen to hit the ripple
    // budget with one-LSB limit cycling.
    d.c_out_f = 0.5 * area_ivr / 1.15 * cap.density_f_m2;
    const double i_lsb = (sys.vin_v - sys.vout_v) / r_pass / std::pow(2.0, d.n_bits);
    d.f_clk_hz = std::clamp(i_lsb / (0.8 * sys.ripple_max_v * d.c_out_f), 10e6, 3e9);
    d.i_quiescent_a = 0.002 * i_ivr;

    const LdoAnalysis a = analyze_ldo(d, sys.vin_v, sys.vout_v, i_ivr);
    r.feasible = a.ripple_pp_v <= sys.ripple_max_v && a.area_m2 <= area_ivr * 1.05;
    r.efficiency = a.efficiency;
    r.ripple_pp_v = a.ripple_pp_v;
    r.f_sw_hz = d.f_clk_hz;
    r.area_m2 = a.area_m2 * n_dist;
    r.ldo = d;
    report.record_survivor();
  } catch (const InvalidParameter&) {
    // Domain rejection (e.g. pass device too narrow): the candidate stays in
    // the sweep as infeasible. The previous catch here was the only one, so
    // a NumericalError used to unwind through the whole explore() sweep.
    report.record_survivor();
  } catch (...) {
    SweepReport local;
    local.record_skip(diagnose_current_exception(
        "optimize_ldo", "LDO @ dist " + std::to_string(n_dist)));
    report.merge(local);
    // The LDO sweep has exactly one candidate, so its death is by definition
    // the every-candidate-died case.
    throw_all_failed("optimize_ldo", local);
  }
  return r;
}

// --- Digital LDO -------------------------------------------------------------

DseResult optimize_dldo(const SystemParams& sys, int n_dist, SweepReport& report) {
  const double area_ivr = sys.area_max_m2 / n_dist;
  const double i_ivr = sys.p_load_w / sys.vout_v / n_dist;
  const tech::CapacitorTech cap = tech::capacitor_tech(sys.node, sys.cap_kind);
  const tech::SwitchTech& core_dev = tech::switch_tech(sys.node, tech::DeviceClass::Core);
  const tech::SwitchTech& dev = sys.vin_v > core_dev.vmax_v
                                    ? tech::switch_tech(sys.node, tech::DeviceClass::Io)
                                    : core_dev;

  DseResult bestr;
  bestr.topology = IvrTopology::DigitalLdo;
  bestr.n_distributed = n_dist;

  // Quantization and interleaving trade ripple against comparator power:
  // more bits shrink the LSB current, more comparator slices raise the
  // decision rate — either way the limit cycle gets smaller while the
  // peripheral clock tree burns more. Sweep the small grid under quarantine.
  std::vector<std::pair<int, int>> grid;
  for (int bits : {6, 7, 8, 9})
    for (int n_comp : {1, 2, 4, 8}) grid.emplace_back(bits, n_comp);

  const std::vector<EvalOutcome<DseResult>> grid_best =
      par::parallel_map<EvalOutcome<DseResult>>(grid.size(), [&](std::size_t gi) {
        const auto& [bits, n_comp] = grid[gi];
        const std::string candidate = "DLDO " + std::to_string(bits) + "b x" +
                                      std::to_string(n_comp) + " @ dist " +
                                      std::to_string(n_dist);
        return quarantine("optimize_dldo", candidate, [&, bits, n_comp]() -> DseResult {
          DseResult r;
          r.topology = IvrTopology::DigitalLdo;
          r.n_distributed = n_dist;

          DldoDesign d;
          d.node = sys.node;
          d.cap_kind = sys.cap_kind;
          d.n_bits = bits;
          d.n_comparators = n_comp;
          // Pass array sized so the fully-on drop is 20% of the headroom;
          // half the area goes to output decap (mirrors the analog LDO).
          const double r_pass = 0.2 * (sys.vin_v - sys.vout_v) / i_ivr;
          d.w_pass_m = dev.ron_w_ohm_m / r_pass;
          d.c_out_f = 0.5 * area_ivr / 1.15 * cap.density_f_m2;
          // Per-slice clock chosen so the *interleaved* decision rate hits
          // the ripple budget with one-LSB limit cycling, but never so slow
          // that a full-scale code walk (2^bits decisions) takes longer than
          // 1 us — the counter's slew limit, not the ripple, is what lets
          // the loop track load steps.
          const double segments = std::pow(2.0, bits);
          const double i_lsb = (sys.vin_v - sys.vout_v) / r_pass / segments;
          const double f_ripple =
              i_lsb / (0.8 * sys.ripple_max_v * d.c_out_f * static_cast<double>(n_comp));
          const double f_slew = segments / (1e-6 * static_cast<double>(n_comp));
          d.f_clk_hz = std::clamp(std::max(f_ripple, f_slew), 10e6, 3e9);
          d.i_quiescent_a = 0.002 * i_ivr;

          try {
            const DldoAnalysis a = analyze_dldo(d, sys.vin_v, sys.vout_v, i_ivr);
            r.feasible = a.ripple_pp_v <= sys.ripple_max_v && a.area_m2 <= area_ivr * 1.05;
            r.efficiency = a.efficiency;
            r.ripple_pp_v = a.ripple_pp_v;
            r.f_sw_hz = d.f_clk_hz;
            r.area_m2 = a.area_m2 * n_dist;
            r.n_interleave = n_comp;
            r.dldo = d;
            r.label = "DLDO x" + std::to_string(n_comp);
          } catch (const InvalidParameter&) {
            // Domain rejection (pass array too narrow): the grid point stays
            // in the sweep as infeasible; real faults propagate to the
            // quarantine.
          }
          return r;
        });
      });
  return reduce_best(collect_survivors("optimize_dldo", grid_best, report), std::move(bestr));
}

// Dispatch shared by the public entry point and the quarantined sweeps.
// check_system_params/range validation stays with the public wrappers: user-input
// errors are not candidate faults and must keep throwing InvalidParameter.
DseResult optimize_topology_impl(const SystemParams& sys, IvrTopology topo, int n_distributed,
                                 SweepReport& report) {
  // Whole-sweep injection point: in Throw mode the point dies before any
  // candidate runs; in EmitNan mode the poisoned load power rides into every
  // candidate and trips the models' finite guards.
  SystemParams s = sys;
  s.p_load_w += fault::inject("optimize_topology");
  switch (topo) {
    case IvrTopology::SwitchedCapacitor: return optimize_sc(s, n_distributed, report);
    case IvrTopology::Buck: return optimize_buck(s, n_distributed, report);
    case IvrTopology::LinearRegulator: return optimize_ldo(s, n_distributed, report);
    case IvrTopology::DigitalLdo: return optimize_dldo(s, n_distributed, report);
  }
  throw InvalidParameter("optimize_topology: unknown topology");
}

// explore() minus the final ordering: the raw sweep results in the serial
// iteration order (topology-major, distribution-minor). best_design() scans
// this directly instead of paying for a full sort of results it discards.
std::vector<DseResult> explore_unsorted(const SystemParams& sys, SweepReport* report) {
  // Fan the topology x distribution-count points out over the pool. Each
  // point is a pure function of (sys, topo, n); results land in the serial
  // iteration order. The inner sweeps of optimize_topology notice they
  // run inside a pool task and stay serial (nested-region rejection).
  std::vector<std::pair<IvrTopology, int>> points;
  for (IvrTopology topo : {IvrTopology::SwitchedCapacitor, IvrTopology::Buck,
                           IvrTopology::LinearRegulator, IvrTopology::DigitalLdo}) {
    for (int n = 1; n <= sys.max_distributed; n *= 2) points.emplace_back(topo, n);
  }

  // Each point is quarantined with its own inner report; the serial
  // index-order merge below keeps results and report thread-count-invariant.
  struct PointCell {
    EvalOutcome<DseResult> outcome;
    SweepReport inner;
  };
  const std::vector<PointCell> cells =
      par::parallel_map<PointCell>(points.size(), [&](std::size_t i) {
        PointCell cell;
        const std::string candidate = std::string(topology_name(points[i].first)) +
                                      " @ dist " + std::to_string(points[i].second);
        cell.outcome = quarantine("explore", candidate, [&] {
          return optimize_topology_impl(sys, points[i].first, points[i].second, cell.inner);
        });
        return cell;
      });

  SweepReport merged;       // inner candidate records + point-level records
  SweepReport point_level;  // drives the all-points-died aggregation
  std::vector<DseResult> all;
  all.reserve(cells.size());
  for (const PointCell& cell : cells) {
    merged.merge(cell.inner);
    if (cell.outcome.ok()) {
      point_level.record_survivor();
      all.push_back(cell.outcome.value());
    } else {
      point_level.record_skip(cell.outcome.diagnostics());
    }
  }
  merged.merge(point_level);
  if (report) report->merge(merged);
  if (point_level.n_survived == 0 && point_level.n_evaluated > 0)
    throw_all_failed("explore", point_level);
  return all;
}

}  // namespace

void sort_dse_results(std::vector<DseResult>& results, OptTarget target) {
  std::stable_sort(results.begin(), results.end(),
                   [target](const DseResult& a, const DseResult& b) {
                     return dse_better(a, b, target);
                   });
}

DseResult optimize_topology(const SystemParams& sys, IvrTopology topo, int n_distributed,
                            SweepReport* report) {
  IVORY_TRACE("dse.optimize_topology");
  metrics::registry().counter("dse.sweeps.optimize_topology").add();
  check_system_params(sys);
  require(n_distributed >= 1 && n_distributed <= sys.max_distributed,
          "optimize_topology: distribution count out of range");
  SweepReport local;
  try {
    const DseResult r = optimize_topology_impl(sys, topo, n_distributed, local);
    if (report) report->merge(local);
    return r;
  } catch (...) {
    // Merge even on failure so the caller's report names what died.
    if (report) report->merge(local);
    throw;
  }
}

std::vector<DseResult> explore(const SystemParams& sys, OptTarget target, SweepReport* report) {
  IVORY_TRACE("dse.explore");
  metrics::registry().counter("dse.sweeps.explore").add();
  check_system_params(sys);
  std::vector<DseResult> all = explore_unsorted(sys, report);
  sort_dse_results(all, target);
  return all;
}

DseResult best_design(const SystemParams& sys, OptTarget target, SweepReport* report) {
  IVORY_TRACE("dse.best_design");
  metrics::registry().counter("dse.sweeps.best_design").add();
  check_system_params(sys);
  // Single pass instead of sorting the whole sweep to take index 0: replace
  // the incumbent only on a strict dse_better() improvement — exactly the
  // element stable_sort would have put first.
  const std::vector<DseResult> all = explore_unsorted(sys, report);
  require(!all.empty(), "best_design: empty sweep");
  std::size_t win = 0;
  for (std::size_t i = 1; i < all.size(); ++i)
    if (dse_better(all[i], all[win], target)) win = i;
  require(all[win].feasible, "best_design: no feasible design found");
  return all[win];
}

TwoStageResult optimize_two_stage(const SystemParams& sys, int n_distributed,
                                  SweepReport* report) {
  IVORY_TRACE("dse.optimize_two_stage");
  metrics::registry().counter("dse.sweeps.optimize_two_stage").add();
  check_system_params(sys);
  require(n_distributed >= 1 && n_distributed <= sys.max_distributed,
          "optimize_two_stage: distribution count out of range");

  // Flatten the v_mid x area-split grid in the serial nesting order; each
  // cascade point optimizes both stages independently of every other point.
  std::vector<std::pair<double, double>> grid;
  for (double v_mid : {1.3 * sys.vout_v, 1.6 * sys.vout_v, 2.0 * sys.vout_v,
                       0.5 * (sys.vout_v + sys.vin_v), 0.7 * sys.vin_v}) {
    if (v_mid <= sys.vout_v * 1.1 || v_mid >= sys.vin_v * 0.95) continue;
    for (double a1 : {0.25, 0.40, 0.55}) grid.emplace_back(v_mid, a1);
  }

  // Same quarantine structure as explore(): per-cascade inner reports merged
  // serially in grid order so the outcome is thread-count-invariant.
  struct CascadeCell {
    EvalOutcome<TwoStageResult> outcome;
    SweepReport inner;
  };
  const std::vector<CascadeCell> cells =
      par::parallel_map<CascadeCell>(grid.size(), [&](std::size_t gi) {
        const auto& [gv_mid, ga1] = grid[gi];
        CascadeCell cell;
        const std::string candidate = "cascade v_mid " + std::to_string(gv_mid) +
                                      " a1 " + std::to_string(ga1);
        cell.outcome = quarantine("optimize_two_stage", candidate, [&] {
          const auto& [v_mid, a1] = grid[gi];
          TwoStageResult cand;
          // Stage 2 first: v_mid -> vout, distributed, sets the power stage 1
          // must carry. Grid construction guarantees valid rails, so the
          // impl entry (no re-check_system_params) is safe here.
          SystemParams s2 = sys;
          s2.vin_v = v_mid;
          s2.area_max_m2 = sys.area_max_m2 * (1.0 - a1);
          const DseResult r2 = optimize_topology_impl(s2, IvrTopology::SwitchedCapacitor,
                                                      n_distributed, cell.inner);
          if (!r2.feasible) return cand;

          SystemParams s1 = sys;
          s1.vout_v = v_mid;
          s1.area_max_m2 = sys.area_max_m2 * a1;
          s1.p_load_w = sys.p_load_w / r2.efficiency;  // Stage 1 carries stage 2's input.
          // The intermediate rail tolerates more ripple than the core rail.
          s1.ripple_max_v = 5.0 * sys.ripple_max_v;
          const DseResult r1 =
              optimize_topology_impl(s1, IvrTopology::SwitchedCapacitor, 1, cell.inner);
          if (!r1.feasible) return cand;

          cand.feasible = true;
          cand.v_mid_v = v_mid;
          cand.area_frac_stage1 = a1;
          cand.stage1 = r1;
          cand.stage2 = r2;
          cand.efficiency = r1.efficiency * r2.efficiency;
          return cand;
        });
        return cell;
      });

  SweepReport merged;
  SweepReport cascade_level;
  TwoStageResult best;
  for (const CascadeCell& cell : cells) {
    merged.merge(cell.inner);
    if (cell.outcome.ok()) {
      cascade_level.record_survivor();
      const TwoStageResult& cand = cell.outcome.value();
      if (cand.feasible && (!best.feasible || cand.efficiency > best.efficiency)) best = cand;
    } else {
      cascade_level.record_skip(cell.outcome.diagnostics());
    }
  }
  merged.merge(cascade_level);
  if (report) report->merge(merged);
  if (cascade_level.n_survived == 0 && cascade_level.n_evaluated > 0)
    throw_all_failed("optimize_two_stage", cascade_level);
  return best;
}

}  // namespace ivory::core
