// Static model of buck-converter IVRs (paper Section 3.2).
//
// Loss model follows the validated off-chip buck analysis of Choi et al.
// (TCAD'07), extended on-chip by deriving switch and inductor parameters
// from the technology database, including the polynomial-fitted frequency-
// dependent inductance coefficient that matters for buck IVRs switching at
// tens-to-hundreds of MHz.
//
// Continuous conduction mode (CCM) throughout; N-way interleaving splits the
// load across phases and cancels output ripple with the classic multiphase
// cancellation factor.
#pragma once

#include "core/blocks.hpp"
#include "tech/tech.hpp"

namespace ivory::core {

struct BuckDesign {
  tech::Node node = tech::Node::n32;
  tech::InductorKind inductor = tech::InductorKind::MagneticFilm;
  tech::CapKind cap_kind = tech::CapKind::MosCap;
  double l_per_phase_h = 0.0;  ///< DC inductance per phase.
  double f_sw_hz = 0.0;
  int n_phases = 1;            ///< Interleaved phases.
  double w_high_m = 0.0;       ///< High-side switch width per phase.
  double w_low_m = 0.0;        ///< Low-side switch width per phase.
  double c_out_f = 0.0;        ///< Output capacitance (total).
  /// Ablation hook: pretend L(f) = L0 (disables the polynomial-fitted
  /// frequency rolloff the paper highlights for buck IVRs).
  bool ignore_l_rolloff = false;
};

struct BuckAnalysis {
  double vin_v = 0.0, vout_v = 0.0, i_load_a = 0.0;
  double duty = 0.0;
  double l_eff_h = 0.0;          ///< Inductance after frequency rolloff.
  double i_ripple_phase_a = 0.0; ///< Peak-to-peak inductor ripple per phase.
  double i_ripple_out_a = 0.0;   ///< After interleaving cancellation.
  // Power breakdown [W].
  double p_out_w = 0.0;
  double p_conduction_w = 0.0;  ///< Switch + inductor DCR conduction.
  double p_gate_w = 0.0;
  double p_overlap_w = 0.0;     ///< V-I overlap during transitions.
  double p_coss_w = 0.0;        ///< Output-capacitance (junction) loss.
  double p_deadtime_w = 0.0;    ///< Body-diode conduction in dead time.
  double p_peripheral_w = 0.0;
  double p_in_w = 0.0;
  double efficiency = 0.0;
  // Ripple and area.
  double ripple_pp_v = 0.0;
  double area_die_m2 = 0.0;      ///< Die area (switches, caps, on-die inductors).
  double area_offdie_m2 = 0.0;   ///< Interposer/board area for off-die inductors.
  double area_m2 = 0.0;          ///< area_die + area_offdie.
};

/// Evaluates the buck at (vin -> vout, i_load). The converter is regulated:
/// the duty cycle settles wherever CCM volt-second balance (including
/// conduction drops) puts it. Throws when the target is unreachable
/// (vout >= vin) or the design fields are invalid.
BuckAnalysis analyze_buck(const BuckDesign& d, double vin_v, double vout_v, double i_load_a);

/// Multiphase output-ripple cancellation factor in [0, 1]:
/// ratio of the summed N-phase ripple to a single phase's ripple at duty D.
double interleave_cancellation(int n_phases, double duty);

}  // namespace ivory::core
