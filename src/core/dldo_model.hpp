// Static model of discrete-time all-digital low-dropout regulators.
//
// Follows the all-digital discrete-time LDO studies in PAPERS.md: a unary
// pass-transistor array (2^bits segments) driven by a counter, sampled by a
// clocked bang-bang comparator at f_clk. Time-interleaving N comparator
// slices multiplies the effective decision rate to N * f_clk, shrinking both
// the limit-cycle ripple and the full-scale response time by 1/N at the cost
// of extra comparator/controller power. Like the analog LDO, conversion
// efficiency is pinned by physics at eta <= Vout/Vin.
#pragma once

#include "core/blocks.hpp"
#include "tech/tech.hpp"

namespace ivory::core {

struct DldoDesign {
  tech::Node node = tech::Node::n32;
  tech::CapKind cap_kind = tech::CapKind::MosCap;
  double w_pass_m = 0.0;       ///< Total pass-device width.
  int n_bits = 7;              ///< Pass-array quantization (unary segments = 2^bits).
  double f_clk_hz = 0.0;       ///< Per-comparator sample clock.
  int n_comparators = 1;       ///< Time-interleaved comparator slices.
  double c_out_f = 0.0;        ///< Output capacitance.
  double i_quiescent_a = 0.0;  ///< Reference + bias current.
};

struct DldoAnalysis {
  double vin_v = 0.0, vout_v = 0.0, i_load_a = 0.0;
  double dropout_v = 0.0;       ///< Minimum achievable Vin - Vout at this load.
  double i_lsb_a = 0.0;         ///< Current of one pass segment at this dropout.
  double current_efficiency = 0.0;
  double efficiency = 0.0;
  double p_out_w = 0.0;
  double p_pass_w = 0.0;        ///< (Vin - Vout) * I: the fundamental LDO loss.
  double p_quiescent_w = 0.0;
  double p_peripheral_w = 0.0;  ///< Comparator slices + counter + clocking.
  double p_in_w = 0.0;
  double ripple_pp_v = 0.0;     ///< Limit-cycle ripple at the interleaved rate.
  double t_response_s = 0.0;    ///< Full-scale code traversal (0 -> 2^bits LSB steps).
  double area_m2 = 0.0;
};

/// Evaluates the digital LDO at (vin -> vout, i_load). Throws when the pass
/// array cannot support the load at the commanded dropout.
DldoAnalysis analyze_dldo(const DldoDesign& d, double vin_v, double vout_v, double i_load_a);

}  // namespace ivory::core
