// Design-optimization module (paper Section 3.1, "Design optimization
// module"): searches topology, conversion ratio, switching frequency, switch
// width, capacitor/inductor area allocation, interleaving, and distribution
// count under the user's constraints. Maximum conversion efficiency is the
// default target, per the paper; area and supply noise are selectable.
// Fault isolation: every sweep evaluates its candidates under per-candidate
// quarantine. A candidate whose evaluation throws (numerical failure,
// non-finite guard, injected fault) is recorded as a structured skip in the
// optional SweepReport and dropped from the results; a candidate that is
// merely infeasible (domain rejection) stays in the results with
// feasible = false. Only when *every* candidate of a sweep dies does the
// sweep itself throw — a single aggregated SweepError naming the dominant
// failure reason. Reports are merged serially in task-index order, so both
// the results and the report are byte-identical at any thread count.
#pragma once

#include <string>
#include <vector>

#include "common/outcome.hpp"
#include "core/buck_model.hpp"
#include "core/dldo_model.hpp"
#include "core/ldo_model.hpp"
#include "core/sc_model.hpp"

namespace ivory::core {

enum class IvrTopology { SwitchedCapacitor, Buck, LinearRegulator, DigitalLdo };
const char* topology_name(IvrTopology t);

enum class OptTarget { Efficiency, Area, Noise };

/// The user-facing system parameters (paper Table 1).
struct SystemParams {
  tech::Node node = tech::Node::n32;
  double area_max_m2 = 20e-6;      ///< Total IVR area budget (20 mm^2).
  double p_load_w = 20.0;          ///< Total average load power.
  double vin_v = 3.3;              ///< IVR input (board) voltage.
  double vout_v = 1.0;             ///< IVR output voltage (core nominal + margin).
  int max_distributed = 4;         ///< Max number of distributed IVRs.
  double ripple_max_v = 0.010;     ///< Static ripple budget.
  /// The GPU case study assumes a high-density capacitor process (paper
  /// Table 1 lists ~10^2 nF/mm^2-class density; Section 5.2 notes "a high
  /// capacitor density process can be used" to lift the SC area hurdle).
  tech::CapKind cap_kind = tech::CapKind::DeepTrench;
  tech::InductorKind inductor = tech::InductorKind::MagneticFilm;
};

/// One explored/optimized design point.
struct DseResult {
  IvrTopology topology = IvrTopology::SwitchedCapacitor;
  std::string label;          ///< e.g. "3:1 SC", "buck", "LDO", "DLDO x4".
  int n_distributed = 1;
  bool feasible = false;
  double efficiency = 0.0;
  double ripple_pp_v = 0.0;
  double f_sw_hz = 0.0;
  double area_m2 = 0.0;       ///< Total across all distributed IVRs.
  int n_interleave = 1;
  // The concrete per-IVR design (one of these is meaningful per topology).
  ScDesign sc{};
  BuckDesign buck{};
  LdoDesign ldo{};
  DldoDesign dldo{};
};

/// Optimizes one topology family for `n_distributed` IVRs sharing the load
/// and area budget equally. Returns feasible=false when no design meets the
/// constraints. When `report` is non-null, every quarantined candidate skip
/// is appended to it (also on throw, so the caller can see what died).
DseResult optimize_topology(const SystemParams& sys, IvrTopology topo, int n_distributed,
                            SweepReport* report = nullptr);

/// Full sweep: every topology x distribution count in {1, 2, ..., max}
/// (powers of two), ordered by the optimization target (best first). A sweep
/// point whose evaluation throws is omitted from the results and recorded in
/// `report`; if every point dies, throws one aggregated SweepError.
std::vector<DseResult> explore(const SystemParams& sys, OptTarget target = OptTarget::Efficiency,
                               SweepReport* report = nullptr);

/// The single best design under `target`, selected with one linear scan over
/// the raw sweep (no full sort). Skips are recorded in `report` like
/// explore(); throws InvalidParameter when no feasible design exists.
DseResult best_design(const SystemParams& sys, OptTarget target = OptTarget::Efficiency,
                      SweepReport* report = nullptr);

/// Validates the user-facing system parameters (throws InvalidParameter).
/// Shared by every sweep entry point, including the funnel in pareto.hpp.
void check_system_params(const SystemParams& sys);

/// Stable sort under the shared explore() ordering: feasible designs first,
/// then best-`target`-first; ties keep their incoming order.
void sort_dse_results(std::vector<DseResult>& results, OptTarget target);

/// Candidate SC ratios n:m (n <= 6, coprime) whose ideal output can regulate
/// down to vout from vin, sorted by ideal output closest to vout (highest
/// attainable efficiency first).
std::vector<std::pair<int, int>> candidate_sc_ratios(double vin_v, double vout_v);

/// Hierarchical two-stage composition (paper contribution: "hierarchical
/// composition of multi-stage on-chip and off-chip power delivery
/// networks"): a centralized first stage converts vin to an intermediate
/// rail, distributed second stages convert the rail to vout at each domain.
/// The optimizer sweeps the intermediate voltage and the area split between
/// the stages.
struct TwoStageResult {
  bool feasible = false;
  double v_mid_v = 0.0;        ///< Chosen intermediate rail.
  double area_frac_stage1 = 0.0;
  DseResult stage1;            ///< vin -> v_mid, centralized.
  DseResult stage2;            ///< v_mid -> vout, distributed n_distributed ways.
  double efficiency = 0.0;     ///< Cascade: eta1 * eta2.
};
TwoStageResult optimize_two_stage(const SystemParams& sys, int n_distributed,
                                  SweepReport* report = nullptr);

}  // namespace ivory::core
