// Power-delivery-subsystem composition (paper Sections 2.2, 5.4).
//
// Combines the off-chip VRM, the board/package/C4/grid PDN, optional on-chip
// IVRs, and the voltage guardband required by the measured supply noise into
// an end-to-end power-delivery efficiency with a per-component breakdown —
// the quantity Fig. 13 of the paper reports. "The power efficiency is the
// percentage of power consumed by cores that perform the actual computation
// over total power."
#pragma once

#include "common/outcome.hpp"
#include "core/optimizer.hpp"
#include "pdn/pdn.hpp"

namespace ivory::core {

/// End-to-end PDS power breakdown [W] and efficiency.
struct PdsBreakdown {
  double v_core_actual_v = 0.0;  ///< Nominal + guardband actually applied.
  double p_core_useful_w = 0.0;  ///< Work-equivalent power at nominal voltage.
  double p_guardband_w = 0.0;    ///< Extra core power burned by the margin.
  double p_grid_ir_w = 0.0;      ///< On-chip grid conduction loss.
  double p_pdn_ir_w = 0.0;       ///< Board + package + C4 conduction loss.
  double p_ivr_loss_w = 0.0;     ///< IVR conversion loss (0 for off-chip PDS).
  double p_vrm_loss_w = 0.0;     ///< Off-chip VRM conversion loss.
  double p_total_w = 0.0;        ///< Input power drawn from the VRM's source.
  double efficiency = 0.0;       ///< p_core_useful / p_total.
};

/// Conventional PDS: the off-chip VRM regulates the core voltage directly
/// and the full core current crosses the PDN. `guardband_v` is the margin
/// the measured noise requires on top of `v_core_nom`.
PdsBreakdown evaluate_pds_offchip(const SystemParams& sys, const pdn::PdnParams& pdn_params,
                                  double v_core_nom_v, double guardband_v);

/// IVR-based PDS: the VRM delivers sys.vin_v (e.g. 3.3 V) across the PDN at
/// proportionally lower current; `ivr` (from the optimizer) converts on-die.
/// `guardband_v` is the residual margin after the IVR's regulation (from the
/// dynamic analysis of the chosen distribution count).
PdsBreakdown evaluate_pds_ivr(const SystemParams& sys, const pdn::PdnParams& pdn_params,
                              const DseResult& ivr, double v_core_nom_v, double guardband_v);

/// Quarantined variants of the two compositions: any exception (bad inputs,
/// infeasible IVR, non-finite intermediate) comes back as a structured
/// Diagnostics instead of unwinding through a sweep.
EvalOutcome<PdsBreakdown> try_evaluate_pds_offchip(const SystemParams& sys,
                                                   const pdn::PdnParams& pdn_params,
                                                   double v_core_nom_v, double guardband_v);
EvalOutcome<PdsBreakdown> try_evaluate_pds_ivr(const SystemParams& sys,
                                               const pdn::PdnParams& pdn_params,
                                               const DseResult& ivr, double v_core_nom_v,
                                               double guardband_v);

}  // namespace ivory::core
