// Umbrella header for Ivory: the early-stage IVR design-space exploration
// tool (Zou et al., DAC 2017).
//
// Typical use:
//
//   ivory::core::SystemParams sys;           // Table-1 style inputs
//   sys.vin_v = 3.3; sys.vout_v = 1.0;
//   sys.p_load_w = 20.0; sys.area_max_m2 = 20e-6;
//   auto designs = ivory::core::explore(sys); // static DSE (Table 2)
//   auto& best = designs.front();
//
//   // Dynamic response to a workload trace (Figs. 9-11):
//   auto traces = ivory::workload::generate_gpu_traces(
//       ivory::workload::Benchmark::CFD, 4, 15.0, 100e-6, 10e-9);
//   auto wave = ivory::core::sc_combined_response(
//       best.sc, sys.vin_v, sys.vout_v, i_load, 10e-9);
//
//   // End-to-end PDS efficiency (Fig. 13):
//   auto pds = ivory::core::evaluate_pds_ivr(
//       sys, ivory::pdn::PdnParams::gpuvolt_default(), best, 0.85, noise);
#pragma once

#include "core/blocks.hpp"
#include "core/buck_model.hpp"
#include "core/dynamic.hpp"
#include "core/ldo_model.hpp"
#include "core/optimizer.hpp"
#include "core/pareto.hpp"
#include "core/pds.hpp"
#include "core/sc_model.hpp"
#include "core/sc_topology.hpp"
#include "pdn/pdn.hpp"
#include "spice/spice.hpp"
#include "tech/tech.hpp"
#include "workload/workload.hpp"
