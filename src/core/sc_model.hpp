// Static model of switched-capacitor IVRs (paper Section 3.2).
//
// Follows Seeman's analytical methodology: the charge-multiplier vectors of
// the topology give the slow- and fast-switching-limit output impedances
//
//   R_SSL = (sum |a_c,i|)^2 / (C_tot * f_sw)
//   R_FSL = (sum |a_r,i|)^2 / (G_tot * D_cyc)
//
// (paper eq. (1), optimal capacitor/switch allocation). Conduction loss is
// I^2 * sqrt(R_SSL^2 + R_FSL^2); switching losses cover gate drive, bottom-
// plate parasitics, capacitor gate leakage and switch off-state leakage; the
// shared peripheral blocks come from blocks.hpp. Device class (core vs
// thick-oxide IO) is chosen per switch from its blocking-voltage stress.
#pragma once

#include <memory>
#include <optional>

#include "core/blocks.hpp"
#include "core/sc_topology.hpp"
#include "tech/tech.hpp"

namespace ivory::core {

struct ScDesign {
  tech::Node node = tech::Node::n32;
  tech::CapKind cap_kind = tech::CapKind::MosCap;
  int n = 2, m = 1;           ///< Conversion ratio n:m (Vout ~ m/n * Vin).
  ScFamily family = ScFamily::Auto;
  double c_fly_f = 0.0;       ///< Total flying (+ interior DC) capacitance.
  double g_tot_s = 0.0;       ///< Total switch on-conductance.
  double f_sw_hz = 0.0;       ///< Per-phase switching frequency.
  int n_interleave = 1;       ///< Interleaved converter slices.
  double c_out_f = 0.0;       ///< Output decap (not part of c_fly_f).
  double duty = 0.5;          ///< D_cyc of the phase signals.

  // --- advanced-user hooks (paper Section 3.2) -----------------------------
  /// Custom switch topology: "advanced users can plug-in their own switch
  /// topology" — when set, n/m/family above are ignored and the charge
  /// multipliers are derived from this network instead.
  std::shared_ptr<const ScTopology> custom_topology;
  /// Direct technology overrides (bypass the built-in database).
  std::optional<tech::CapacitorTech> custom_cap;

  /// The topology this design analyzes (custom or built-in).
  ScTopology topology() const {
    return custom_topology ? *custom_topology : make_topology(n, m, family);
  }
  /// The capacitor technology this design uses (custom or database).
  tech::CapacitorTech capacitor() const {
    return custom_cap ? *custom_cap : tech::capacitor_tech(node, cap_kind);
  }
};

struct ScAnalysis {
  // Operating point.
  double vin_v = 0.0, i_load_a = 0.0;
  double vout_ideal_v = 0.0;  ///< (m/n) * Vin.
  double vout_v = 0.0;        ///< After the I*R_out drop.
  // Impedances.
  double rssl_ohm = 0.0, rfsl_ohm = 0.0, rout_ohm = 0.0;
  // Power breakdown [W].
  double p_out_w = 0.0;
  double p_conduction_w = 0.0;
  double p_gate_w = 0.0;
  double p_bottom_plate_w = 0.0;
  double p_leakage_w = 0.0;
  double p_peripheral_w = 0.0;
  double p_in_w = 0.0;
  double efficiency = 0.0;
  // Ripple and area.
  double ripple_pp_v = 0.0;
  double area_caps_m2 = 0.0, area_switches_m2 = 0.0, area_peripheral_m2 = 0.0;
  double area_m2 = 0.0;
  double switch_width_m = 0.0;  ///< Total gate width across all switches.
};

/// Evaluates the design at (vin, i_load) running open-loop at its design
/// switching frequency.
ScAnalysis analyze_sc(const ScDesign& d, double vin_v, double i_load_a);

/// Evaluates the design regulated to `vout_target`: the controller lowers the
/// effective switching frequency (raising R_SSL) until the output drops to
/// the target. Infeasible when the target exceeds what the converter can
/// reach at its design frequency (the "efficiency cliff" past the peak in
/// Fig. 7) or sits below the floor the FSL impedance allows.
struct ScRegulated {
  bool feasible = false;
  double f_sw_used_hz = 0.0;
  ScAnalysis analysis;
};
ScRegulated analyze_sc_regulated(const ScDesign& d, double vin_v, double vout_target_v,
                                 double i_load_a);

/// Effective high-frequency decoupling seen at the output: the output decap
/// plus the fly-capacitance fraction connected across the load at any
/// instant. This is the C of the in-cycle model.
double sc_output_hf_cap(const ScDesign& d);

}  // namespace ivory::core
