#include "core/dldo_model.hpp"

#include <cmath>

#include "common/error.hpp"

namespace ivory::core {

DldoAnalysis analyze_dldo(const DldoDesign& d, double vin_v, double vout_v, double i_load_a) {
  IVORY_CHECK_FINITE(vin_v, "analyze_dldo");
  IVORY_CHECK_FINITE(vout_v, "analyze_dldo");
  IVORY_CHECK_FINITE(i_load_a, "analyze_dldo");
  require(vin_v > 0.0, "analyze_dldo: vin must be positive");
  require(vout_v > 0.0 && vout_v < vin_v, "analyze_dldo: need 0 < vout < vin");
  require(i_load_a > 0.0, "analyze_dldo: load current must be positive");
  require(d.w_pass_m > 0.0, "DldoDesign: pass width must be positive");
  require(d.n_bits >= 1 && d.n_bits <= 16, "DldoDesign: bits must be in [1, 16]");
  require(d.f_clk_hz > 0.0, "DldoDesign: clock must be positive");
  require(d.n_comparators >= 1 && d.n_comparators <= 64,
          "DldoDesign: comparator slices must be in [1, 64]");
  require(d.c_out_f > 0.0, "DldoDesign: output capacitance must be positive");
  require(d.i_quiescent_a >= 0.0, "DldoDesign: quiescent current must be non-negative");

  // The pass device must survive the full input voltage.
  const tech::SwitchTech& core_dev = tech::switch_tech(d.node, tech::DeviceClass::Core);
  const tech::SwitchTech& dev = vin_v > core_dev.vmax_v
                                    ? tech::switch_tech(d.node, tech::DeviceClass::Io)
                                    : core_dev;

  DldoAnalysis a;
  a.vin_v = vin_v;
  a.vout_v = vout_v;
  a.i_load_a = i_load_a;

  a.dropout_v = dev.ron(d.w_pass_m) * i_load_a;
  require(vin_v - vout_v >= a.dropout_v,
          "analyze_dldo: pass array too narrow for this dropout/load");

  a.p_out_w = vout_v * i_load_a;
  a.p_pass_w = (vin_v - vout_v) * i_load_a;
  a.p_quiescent_w = vin_v * d.i_quiescent_a;

  // Counter + comparator slices: each of the n_comparators interleaved
  // slices samples at f_clk, so the controller sees n_comp decisions per
  // clock; ~2 LSB of pass-array gate charge toggles per decision on average.
  const double segments = std::pow(2.0, d.n_bits);
  const double c_lsb = dev.cgate(d.w_pass_m) / segments;
  const PeripheralBudget per =
      peripheral_budget(d.node, d.f_clk_hz, d.n_comparators, 2.0 * c_lsb, dev.vdd_nom_v);
  a.p_peripheral_w = per.total_power();

  a.p_in_w = a.p_out_w + a.p_pass_w + a.p_quiescent_w + a.p_peripheral_w;
  a.efficiency = a.p_out_w / a.p_in_w;
  a.current_efficiency = i_load_a / (i_load_a + d.i_quiescent_a +
                                     a.p_peripheral_w / std::max(vin_v, 1e-9));

  // Limit cycle at the interleaved decision rate n_comp * f_clk: the loop
  // dithers by one LSB of pass current per decision and the output
  // integrates that error on C_out for one decision interval. Full-scale
  // response traverses all 2^bits codes one LSB per decision.
  const double f_decision = static_cast<double>(d.n_comparators) * d.f_clk_hz;
  a.i_lsb_a = (vin_v - vout_v) / dev.ron(d.w_pass_m) / segments;
  a.ripple_pp_v = std::max(a.i_lsb_a, 0.0) / (f_decision * d.c_out_f);
  a.t_response_s = segments / f_decision;

  const tech::CapacitorTech cap = tech::capacitor_tech(d.node, d.cap_kind);
  a.area_m2 = 1.15 * (dev.area(d.w_pass_m) + cap.area(d.c_out_f) + per.area_m2);
  IVORY_CHECK_FINITE(a.efficiency, "analyze_dldo");
  IVORY_CHECK_FINITE(a.ripple_pp_v, "analyze_dldo");
  IVORY_CHECK_FINITE(a.area_m2, "analyze_dldo");
  return a;
}

}  // namespace ivory::core
