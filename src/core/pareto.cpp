#include "core/pareto.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/json.hpp"
#include "common/metrics.hpp"
#include "common/outcome.hpp"
#include "common/parallel.hpp"
#include "common/trace.hpp"
#include "core/dynamic.hpp"
#include "core/report_json.hpp"
#include "pdn/pdn.hpp"

namespace ivory::core {

// ---------------------------------------------------------------------------
// Dominance and exact extraction
// ---------------------------------------------------------------------------

namespace {

// No worse in every enabled objective (ties allowed everywhere).
bool weakly_dominates(const ScreenMetrics& a, const ScreenMetrics& b,
                      const FunnelObjectives& obj) {
  if (obj.efficiency && a.efficiency < b.efficiency) return false;
  if (obj.area && a.area_m2 > b.area_m2) return false;
  if (obj.ripple && a.ripple_pp_v > b.ripple_pp_v) return false;
  return true;
}

}  // namespace

bool dominates(const ScreenMetrics& a, const ScreenMetrics& b, const FunnelObjectives& obj) {
  if (!weakly_dominates(a, b, obj)) return false;
  if (obj.efficiency && a.efficiency > b.efficiency) return true;
  if (obj.area && a.area_m2 < b.area_m2) return true;
  if (obj.ripple && a.ripple_pp_v < b.ripple_pp_v) return true;
  return false;
}

namespace {

struct FrontEntry {
  std::uint64_t index = 0;
  ScreenMetrics m;
};

// Exact non-dominated extraction in O(n log n), replacing the quadratic
// pairwise scan (at ~300k feasible candidates per sweep the scan dominated
// the whole funnel). Every enabled objective is oriented to "minimize"
// (efficiency negated; disabled axes become the constant 0, which every
// comparison ties on), the points are sorted lexicographically with the
// candidate index as the final tie-break, and a single sweep maintains a
// 2-D staircase over the trailing two keys:
//
//   - A later point in sort order can never strictly dominate an earlier
//     one (its first differing key is worse), so one forward pass suffices.
//   - A point is weakly dominated by some earlier point iff a *kept*
//     earlier point beats it in keys 2 and 3 (key 1 is <= by the sort, and
//     weak dominance is transitive through dropped points).
//   - The staircase stores kept (k2, k3) pairs with k3 strictly decreasing
//     as k2 increases; the entry with the largest k2 <= p.k2 therefore
//     carries the minimum k3 over all kept points with k2 <= p.k2.
//
// Ties in all enabled objectives are duplicates: the index tie-break sorts
// the earliest first and the staircase drops the rest, exactly the
// "duplicates keep the earliest index" contract. The survivor *set* is a
// property of the points alone, so the result is invariant to input order
// up to that duplicate rule, which funnel_explore's serial block-order
// merge makes deterministic at any thread count.
struct FrontKey {
  double k1 = 0.0, k2 = 0.0, k3 = 0.0;
  std::uint64_t index = 0;
  std::uint32_t pos = 0;  ///< position in the caller's entry vector
};

std::vector<FrontEntry> extract_front(const std::vector<FrontEntry>& pts,
                                      const FunnelObjectives& obj) {
  std::vector<FrontKey> keys;
  keys.reserve(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    FrontKey k;
    if (obj.efficiency) k.k1 = -pts[i].m.efficiency;
    if (obj.area) k.k2 = pts[i].m.area_m2;
    if (obj.ripple) k.k3 = pts[i].m.ripple_pp_v;
    k.index = pts[i].index;
    k.pos = static_cast<std::uint32_t>(i);
    keys.push_back(k);
  }
  std::sort(keys.begin(), keys.end(), [](const FrontKey& a, const FrontKey& b) {
    if (a.k1 != b.k1) return a.k1 < b.k1;
    if (a.k2 != b.k2) return a.k2 < b.k2;
    if (a.k3 != b.k3) return a.k3 < b.k3;
    return a.index < b.index;
  });
  // Staircase over (k2, k3): key -> minimum k3 among kept points with that
  // k2. Flat vector kept sorted by k2 ascending / k3 strictly descending.
  std::vector<std::pair<double, double>> stair;
  std::vector<FrontEntry> keep;
  for (const FrontKey& k : keys) {
    const auto it = std::upper_bound(
        stair.begin(), stair.end(), k.k2,
        [](double v, const std::pair<double, double>& s) { return v < s.first; });
    if (it != stair.begin() && std::prev(it)->second <= k.k3) continue;  // weakly dominated
    const auto lo = std::lower_bound(
        stair.begin(), stair.end(), k.k2,
        [](const std::pair<double, double>& s, double v) { return s.first < v; });
    auto hi = lo;
    while (hi != stair.end() && hi->second >= k.k3) ++hi;
    if (lo == hi) {
      stair.insert(lo, {k.k2, k.k3});
    } else {
      *lo = {k.k2, k.k3};
      stair.erase(lo + 1, hi);
    }
    keep.push_back(pts[k.pos]);
  }
  // Restore ascending candidate-index order (the order block merging and
  // the final efficiency sort both start from).
  std::sort(keep.begin(), keep.end(),
            [](const FrontEntry& a, const FrontEntry& b) { return a.index < b.index; });
  return keep;
}

}  // namespace

std::vector<std::size_t> pareto_filter(const std::vector<ScreenMetrics>& pts,
                                       const FunnelObjectives& obj) {
  std::vector<FrontEntry> entries;
  entries.reserve(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i)
    entries.push_back(FrontEntry{static_cast<std::uint64_t>(i), pts[i]});
  const std::vector<FrontEntry> front = extract_front(entries, obj);
  std::vector<std::size_t> keep;
  keep.reserve(front.size());
  for (const FrontEntry& f : front) keep.push_back(static_cast<std::size_t>(f.index));
  return keep;
}

// ---------------------------------------------------------------------------
// FunnelSpec
// ---------------------------------------------------------------------------

FunnelSpec FunnelSpec::scaled(double density) const {
  require(density > 0.0 && std::isfinite(density), "FunnelSpec::scaled: density must be > 0");
  FunnelSpec s = *this;
  const auto ax = [&](int steps) {
    return std::max(2, static_cast<int>(std::lround(steps * density)));
  };
  s.sc_split_steps = ax(sc_split_steps);
  s.sc_out_frac_steps = ax(sc_out_frac_steps);
  s.buck_l_frac_steps = ax(buck_l_frac_steps);
  s.buck_util_steps = ax(buck_util_steps);
  s.buck_fsw_steps = ax(buck_fsw_steps);
  s.ldo_decap_steps = ax(ldo_decap_steps);
  s.ldo_drop_steps = ax(ldo_drop_steps);
  s.dldo_clock_steps = ax(dldo_clock_steps);
  s.dldo_decap_steps = ax(dldo_decap_steps);
  s.hybrid_steps = std::max(1, static_cast<int>(std::lround(hybrid_steps * density)));
  return s;
}

// ---------------------------------------------------------------------------
// Candidate-space construction
// ---------------------------------------------------------------------------

namespace {

constexpr int kIlSteps = 7;            // SC interleave axis: 1, 2, ..., 64.
constexpr double kPeakLoadFactor = 2.5;  // Mirrors optimize_sc.

enum class PlanKind { Sc, Buck, Ldo, Dldo };

// Per-(ratio, family) constants of the SC closed-form screen, derived once
// from the memoized static analysis. The coefficients reduce analyze_at's
// per-switch loop to three multiplies per candidate:
//   p_gate   = f_used * kgate_pg  * g_tot
//   p_leak_sw =          kleak_pg * g_tot
//   c_gate    =          kcgate_pg * g_tot
struct ScVariantConst {
  int n = 0, m = 0;
  ScFamily family = ScFamily::Ladder;
  double ratio = 0.0;      // m/n
  double videal = 0.0;
  double sum_ac = 0.0, sum_ar = 0.0;
  double k_area_g = 0.0;   // die area per siemens of G_tot
  double kgate_pg = 0.0;
  double kleak_pg = 0.0;
  double kcgate_pg = 0.0;
  double vcap = 0.0;       // first cap's held voltage
  double kappa = 0.0;      // HF fly-cap fraction at the output
};

struct Plan {
  PlanKind kind = PlanKind::Sc;
  int variant = 0;   // index into sc_variants / buck_phases / dldo_variants
  int n_dist = 1;
  double h = 1.0;    // IVR share of the load
  std::uint64_t base = 0;
  std::uint64_t count = 0;
  // Derived per (n_dist, h):
  double i_ivr = 0.0;       // per-IVR average load current
  double area_ivr = 0.0;    // per-IVR area budget
  double usable = 0.0;      // area_ivr / 1.15
  double p_vrm_in_w = 0.0;  // board-VRM input power for the (1-h) share
};

struct FunnelCtx {
  SystemParams sys;
  FunnelSpec spec;
  const tech::CapacitorTech* cap = nullptr;
  const tech::InductorTech* ind = nullptr;
  const tech::SwitchTech* core_dev = nullptr;
  const tech::SwitchTech* pass_dev = nullptr;  // IO class when vin > core vmax
  double ugc = 0.0;       // unit_gate_cap(node)
  double vdd_core = 0.0;
  double buck_sd = 0.0, buck_si = 0.0;  // sqrt(duty0), sqrt(1 - duty0)

  std::vector<double> sc_split, sc_out_frac;
  std::vector<double> buck_l_frac, buck_util, buck_fsw, buck_lmult;
  std::vector<double> ldo_decap, ldo_drop;
  std::vector<double> dldo_margin, dldo_decap;
  std::vector<double> hybrid;
  std::vector<int> dists;
  std::vector<ScVariantConst> sc_variants;
  std::vector<int> buck_phases{2, 4, 8, 16};
  std::vector<std::pair<int, int>> dldo_variants;  // (bits, n_comparators)
  double sc_per_area[kIlSteps] = {};  // peripheral area at 2*il phases
  std::vector<double> buck_per_area;  // peripheral area per phase count

  std::vector<Plan> plans;
  std::uint64_t total = 0;
};

std::vector<double> linspace(double lo, double hi, int n) {
  std::vector<double> v;
  if (n <= 1) {
    v.push_back(0.5 * (lo + hi));
    return v;
  }
  v.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    v.push_back(lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(n - 1));
  return v;
}

std::vector<double> logspace(double lo, double hi, int n) {
  std::vector<double> v;
  if (n <= 1) {
    v.push_back(std::sqrt(lo * hi));
    return v;
  }
  v.reserve(static_cast<std::size_t>(n));
  const double llo = std::log(lo), lhi = std::log(hi);
  for (int i = 0; i < n; ++i)
    v.push_back(std::exp(llo + (lhi - llo) * static_cast<double>(i) / static_cast<double>(n - 1)));
  return v;
}

// Peripheral-block die area at `phases` phases (mirrors blocks.cpp).
double peripheral_area(const tech::SwitchTech& core_dev, int phases) {
  const double gates = 1500.0 + (200.0 + 50.0) * static_cast<double>(phases);
  return gates * 4.0 * core_dev.area(0.5e-6) * 2.0;
}

void check_spec(const FunnelSpec& spec) {
  require(spec.sc_split_steps >= 1 && spec.sc_out_frac_steps >= 1 &&
              spec.buck_l_frac_steps >= 1 && spec.buck_util_steps >= 1 &&
              spec.buck_fsw_steps >= 1 && spec.ldo_decap_steps >= 1 &&
              spec.ldo_drop_steps >= 1 && spec.dldo_clock_steps >= 1 &&
              spec.dldo_decap_steps >= 1 && spec.hybrid_steps >= 1,
          "FunnelSpec: every grid axis needs at least one step");
  require(spec.block >= 256, "FunnelSpec: block size must be >= 256");
  require(spec.front_cap >= 1, "FunnelSpec: front_cap must be >= 1");
  require(spec.sim_dt_s > 0.0 && spec.sim_duration_s >= 16.0 * spec.sim_dt_s,
          "FunnelSpec: need sim_duration >= 16 * sim_dt > 0");
}

FunnelCtx build_ctx(const SystemParams& sys, const FunnelSpec& spec) {
  FunnelCtx c;
  c.sys = sys;
  c.spec = spec;
  c.cap = &tech::capacitor_tech(sys.node, sys.cap_kind);
  c.ind = &tech::inductor_tech(sys.inductor);
  c.core_dev = &tech::switch_tech(sys.node, tech::DeviceClass::Core);
  c.pass_dev = sys.vin_v > c.core_dev->vmax_v
                   ? &tech::switch_tech(sys.node, tech::DeviceClass::Io)
                   : c.core_dev;
  c.ugc = unit_gate_cap(sys.node);
  c.vdd_core = c.core_dev->vdd_nom_v;
  const double duty0 = sys.vout_v / sys.vin_v;
  c.buck_sd = std::sqrt(duty0);
  c.buck_si = std::sqrt(1.0 - duty0);

  c.sc_split = linspace(0.50, 0.98, spec.sc_split_steps);
  c.sc_out_frac = linspace(0.05, 0.60, spec.sc_out_frac_steps);
  c.buck_l_frac = linspace(0.02, 0.70, spec.buck_l_frac_steps);
  c.buck_util = linspace(0.03, 1.00, spec.buck_util_steps);
  c.buck_fsw = logspace(2e6, 1e9, spec.buck_fsw_steps);
  c.buck_lmult.reserve(c.buck_fsw.size());
  for (const double f : c.buck_fsw) c.buck_lmult.push_back(c.ind->inductance_at(1.0, f));
  c.ldo_decap = linspace(0.20, 0.80, spec.ldo_decap_steps);
  c.ldo_drop = linspace(0.08, 0.45, spec.ldo_drop_steps);
  c.dldo_margin = linspace(1.0, 3.0, spec.dldo_clock_steps);
  c.dldo_decap = linspace(0.25, 0.75, spec.dldo_decap_steps);

  // Hybrid axis: full-IVR first, then descending IVR share down to 0.55 —
  // the remainder of the load rides the off-chip board VRM.
  c.hybrid.push_back(1.0);
  for (int k = 1; k < spec.hybrid_steps; ++k)
    c.hybrid.push_back(1.0 - 0.45 * static_cast<double>(k) /
                                 static_cast<double>(spec.hybrid_steps - 1));

  for (int n = 1; n <= sys.max_distributed; n *= 2) c.dists.push_back(n);

  // SC ratio x family variants (same enumeration order as optimize_sc).
  for (const auto& ratio : candidate_sc_ratios(sys.vin_v, sys.vout_v)) {
    for (const ScFamily family :
         ratio.second == 1 ? std::vector<ScFamily>{ScFamily::Ladder, ScFamily::SeriesParallel}
                           : std::vector<ScFamily>{ScFamily::Ladder}) {
      const ScStaticAnalysis& st = sc_static_analysis(ratio.first, ratio.second, family);
      // Plan-level capacitor voltage-rating check (mirrors analyze_at's
      // require): a variant whose caps exceed the technology rating can
      // never survive, so it is excluded from the candidate space instead
      // of producing millions of identical skips.
      double worst_cap_ratio = 0.0;
      for (const ScCap& cc : st.topo.caps)
        worst_cap_ratio = std::max(worst_cap_ratio, cc.ideal_v_ratio);
      if (worst_cap_ratio * sys.vin_v > c.cap->vmax_v * 1.05) continue;

      ScVariantConst v;
      v.n = ratio.first;
      v.m = ratio.second;
      v.family = family;
      v.ratio = st.topo.ideal_ratio();
      v.videal = v.ratio * sys.vin_v;
      v.sum_ac = st.cv.sum_ac();
      v.sum_ar = st.cv.sum_ar();
      const tech::SwitchTech& io_dev = tech::switch_tech(sys.node, tech::DeviceClass::Io);
      const std::size_t n_sw = st.topo.switches.size();
      for (std::size_t i = 0; i < n_sw; ++i) {
        const double weight =
            std::max(st.cv.a_switch[i], 0.02 * v.sum_ar / static_cast<double>(n_sw));
        const double share = weight / v.sum_ar;  // g_i = share * g_tot
        const double v_block = st.stress[i] * sys.vin_v;
        const tech::SwitchTech& dev = v_block > c.core_dev->vmax_v ? io_dev : *c.core_dev;
        v.k_area_g += share * dev.ron_w_ohm_m * dev.area_per_w_m;
        v.kgate_pg += share * dev.ron_w_ohm_m * dev.cgate_per_w_f_m * dev.vdd_nom_v *
                      dev.vdd_nom_v;
        v.kleak_pg += 0.5 * share * dev.ron_w_ohm_m * dev.ileak_per_w_a_m * v_block;
        v.kcgate_pg += share * dev.ron_w_ohm_m * dev.cgate_per_w_f_m;
      }
      v.vcap = sys.vin_v * (st.topo.caps.empty() ? 1.0 : st.topo.caps.front().ideal_v_ratio);
      v.kappa = 0.5;
      if (family == ScFamily::SeriesParallel) {
        const double chain = static_cast<double>(v.n - 1);
        v.kappa = 0.5 * (1.0 + 1.0 / (chain * chain));
      }
      c.sc_variants.push_back(v);
    }
  }

  for (int il = 0; il < kIlSteps; ++il)
    c.sc_per_area[il] = peripheral_area(*c.core_dev, 2 * (1 << il));
  for (const int ph : c.buck_phases) c.buck_per_area.push_back(peripheral_area(*c.core_dev, ph));

  for (int bits : {6, 7, 8, 9})
    for (int n_comp : {1, 2, 4, 8}) c.dldo_variants.emplace_back(bits, n_comp);

  // Plan enumeration: topology-major, then variant, distribution, hybrid —
  // a fixed serial order that defines the global candidate index space.
  const auto add_plans = [&](PlanKind kind, int n_variants, std::uint64_t inner) {
    for (int v = 0; v < n_variants; ++v)
      for (const int dist : c.dists)
        for (const double h : c.hybrid) {
          Plan p;
          p.kind = kind;
          p.variant = v;
          p.n_dist = dist;
          p.h = h;
          p.base = c.total;
          p.count = inner;
          p.i_ivr = h * sys.p_load_w / sys.vout_v / dist;
          p.area_ivr = sys.area_max_m2 / dist;
          p.usable = p.area_ivr / 1.15;
          if (h < 1.0) {
            const double p_vrm_out = (1.0 - h) * sys.p_load_w;
            const pdn::VrmModel vrm = pdn::VrmModel::board_vrm(
                sys.vout_v, pdn::kVrmRatingFactor * p_vrm_out / sys.vout_v);
            p.p_vrm_in_w = vrm.input_power(p_vrm_out);
          }
          c.total += inner;
          c.plans.push_back(p);
        }
  };
  add_plans(PlanKind::Sc, static_cast<int>(c.sc_variants.size()),
            static_cast<std::uint64_t>(c.sc_split.size()) * c.sc_out_frac.size() * kIlSteps);
  add_plans(PlanKind::Buck, static_cast<int>(c.buck_phases.size()),
            static_cast<std::uint64_t>(c.buck_l_frac.size()) * c.buck_util.size() *
                c.buck_fsw.size());
  add_plans(PlanKind::Ldo, 1,
            static_cast<std::uint64_t>(c.ldo_decap.size()) * c.ldo_drop.size());
  add_plans(PlanKind::Dldo, static_cast<int>(c.dldo_variants.size()),
            static_cast<std::uint64_t>(c.dldo_margin.size()) * c.dldo_decap.size());
  return c;
}

// ---------------------------------------------------------------------------
// Stage 1: closed-form screens
// ---------------------------------------------------------------------------

// Shared tail: system-level metrics from per-IVR input power and IVR-rail
// ripple/area. Hybrid candidates add the plan-constant VRM input power.
inline void fill_metrics(const FunnelCtx& c, const Plan& p, double p_in_ivr, double ripple,
                         double area_ivr_total, ScreenMetrics& m) {
  m.efficiency = c.sys.p_load_w /
                 (static_cast<double>(p.n_dist) * p_in_ivr + p.p_vrm_in_w);
  m.ripple_pp_v = ripple;
  m.area_m2 = area_ivr_total * static_cast<double>(p.n_dist);
}

void check_screen_finite(const ScreenMetrics& m) {
  if (!(std::isfinite(m.efficiency) && std::isfinite(m.area_m2) &&
        std::isfinite(m.ripple_pp_v)))
    throw NonFiniteError("funnel_screen: non-finite screen metric");
}

// SC sizing shared by the screen and the frontier re-derivation.
struct ScSizing {
  double c_fly = 0.0, c_out = 0.0, g_tot = 0.0;
  double area_caps = 0.0, area_sw = 0.0;
  int n_il = 1;
  double f_max = 0.0;   // design (peak-regulation) frequency
  double f_used = 0.0;  // pulse-skipped frequency at the average load
  bool viable = false;  // passes the FSL floor and sane-frequency gates
};

ScSizing sc_sizing(const FunnelCtx& c, const Plan& p, std::uint64_t local) {
  const ScVariantConst& v = c.sc_variants[static_cast<std::size_t>(p.variant)];
  const int il_idx = static_cast<int>(local % kIlSteps);
  const std::uint64_t rest = local / kIlSteps;
  const double y = c.sc_out_frac[rest % c.sc_out_frac.size()];
  const double x = c.sc_split[rest / c.sc_out_frac.size()];

  ScSizing s;
  s.n_il = 1 << il_idx;
  s.area_caps = x * p.usable;
  s.area_sw = (1.0 - x) * p.usable * 0.95;  // 5% peripheral, as optimize_sc.
  const double c_total = s.area_caps * c.cap->density_f_m2;
  s.c_fly = (1.0 - y) * c_total;
  s.c_out = y * c_total;
  s.g_tot = s.area_sw / v.k_area_g;

  const double rfsl = v.sum_ar * v.sum_ar / (s.g_tot * 0.5);
  const double r_needed_peak = (v.videal - c.sys.vout_v) / (kPeakLoadFactor * p.i_ivr);
  if (r_needed_peak <= rfsl * 1.02) return s;  // FSL floor: cannot regulate at peak.
  const double rssl_peak = std::sqrt(r_needed_peak * r_needed_peak - rfsl * rfsl);
  s.f_max = v.sum_ac * v.sum_ac / (s.c_fly * rssl_peak);
  if (s.f_max < 1e5 || s.f_max > 5e9) return s;
  // Regulated at the average load: r_needed_avg = 2.5 * r_needed_peak always
  // clears the feasibility floor hypot(rssl_peak, rfsl) = r_needed_peak.
  const double r_needed_avg = (v.videal - c.sys.vout_v) / p.i_ivr;
  const double rssl_needed = std::sqrt(r_needed_avg * r_needed_avg - rfsl * rfsl);
  s.f_used = v.sum_ac * v.sum_ac / (s.c_fly * rssl_needed);
  s.viable = true;
  return s;
}

// Closed-form mirror of evaluate_split + analyze_sc_regulated + analyze_at.
bool screen_sc(const FunnelCtx& c, const Plan& p, std::uint64_t local, ScreenMetrics& m) {
  const ScVariantConst& v = c.sc_variants[static_cast<std::size_t>(p.variant)];
  const ScSizing s = sc_sizing(c, p, local);
  if (!s.viable) return false;

  const double i = p.i_ivr;
  const double p_gate = s.f_used * v.kgate_pg * s.g_tot;
  const double p_bp = 0.25 * s.f_used * c.cap->bottom_plate_ratio * s.c_fly * v.videal * v.videal;
  const double p_leak = c.cap->leak_a_per_f * s.c_fly * v.vcap + v.kleak_pg * s.g_tot;
  // Peripheral: controller/clock/comparator run at the *design* frequency
  // (pulse skipping does not gate them); the driver term scales with the
  // effective rate. Mirrors analyze_at's peripheral_budget call.
  const int phases = 2 * s.n_il;
  const double cgvdd2 = c.ugc * c.vdd_core * c.vdd_core;
  const double f_ctrl = s.f_max * static_cast<double>(phases);
  const double p_per = 1500.0 * 0.2 * cgvdd2 * f_ctrl +
                       200.0 * static_cast<double>(phases) * 0.2 * cgvdd2 * s.f_max +
                       50.0 * cgvdd2 * f_ctrl +
                       0.3 * v.kcgate_pg * s.g_tot * c.vdd_core * c.vdd_core * s.f_used;
  const double p_in = c.sys.vin_v * v.ratio * i + p_gate + p_bp + p_leak + p_per;

  const double c_hf = s.c_out + v.kappa * s.c_fly;
  const double ripple = i / (static_cast<double>(s.n_il) * s.f_used * std::max(c_hf, 1e-18));
  const int il_idx = static_cast<int>(local % kIlSteps);
  const double area_model = 1.15 * (s.area_caps + s.area_sw + c.sc_per_area[il_idx]);

  fill_metrics(c, p, p_in, ripple, area_model, m);
  check_screen_finite(m);
  return ripple <= c.sys.ripple_max_v * 1.05 && area_model <= p.area_ivr * 1.02;
}

// Buck sizing shared by the screen and the frontier re-derivation.
struct BuckSizing {
  double l_phase = 0.0, c_out = 0.0, w_hs = 0.0, w_ls = 0.0, f_sw = 0.0;
  double area_l = 0.0, area_sw = 0.0, area_c = 0.0;
  bool viable = false;
};

BuckSizing buck_sizing(const FunnelCtx& c, const Plan& p, std::uint64_t local) {
  const double nn = static_cast<double>(c.buck_phases[static_cast<std::size_t>(p.variant)]);
  const std::uint64_t f_idx = local % c.buck_fsw.size();
  const std::uint64_t rest = local / c.buck_fsw.size();
  const double util = c.buck_util[rest % c.buck_util.size()];
  const double l_frac = c.buck_l_frac[rest / c.buck_util.size()];

  BuckSizing s;
  s.f_sw = c.buck_fsw[f_idx];
  s.area_l = l_frac * p.usable;
  const double rest_a = (1.0 - l_frac) * p.usable;
  s.area_sw = 0.4 * rest_a * util;
  s.area_c = 0.55 * rest_a;  // 5% peripheral, as optimize_buck.
  const double l_total = s.area_l * c.ind->density_h_m2;
  s.l_phase = l_total / nn;
  s.c_out = s.area_c * c.cap->density_f_m2;
  const double w_total = s.area_sw / c.pass_dev->area_per_w_m;
  s.w_hs = w_total / nn * c.buck_sd / (c.buck_sd + c.buck_si);
  s.w_ls = w_total / nn * c.buck_si / (c.buck_sd + c.buck_si);
  s.viable = s.l_phase > 0.0 && s.c_out > 0.0 && s.w_hs > 0.0;
  return s;
}

// Closed-form mirror of analyze_buck (with the per-frequency inductance
// rolloff multiplier precomputed per fsw grid step).
bool screen_buck(const FunnelCtx& c, const Plan& p, std::uint64_t local, ScreenMetrics& m) {
  const BuckSizing s = buck_sizing(c, p, local);
  if (!s.viable) return false;
  const tech::SwitchTech& dev = *c.pass_dev;
  const int n_phases = c.buck_phases[static_cast<std::size_t>(p.variant)];
  const double nn = static_cast<double>(n_phases);
  const double i = p.i_ivr, i_ph = i / nn;
  const double vin = c.sys.vin_v, vout = c.sys.vout_v;
  const double f = s.f_sw;

  const double l_eff = s.l_phase * c.buck_lmult[local % c.buck_fsw.size()];
  const double r_hs = dev.ron_w_ohm_m / s.w_hs;
  const double r_ls = dev.ron_w_ohm_m / s.w_ls;
  const double r_dcr = c.ind->dcr_ohm_per_h * s.l_phase;

  double duty = vout / vin;
  for (int pass = 0; pass < 2; ++pass) {
    const double drop_on = i_ph * (r_hs + r_dcr);
    const double drop_off = i_ph * (r_ls + r_dcr);
    duty = (vout + drop_off) / std::max(vin - drop_on + drop_off, 1e-9);
  }
  if (!(duty > 0.0 && duty < 1.0)) return false;  // Unreachable operating point.

  const double i_rip = (vin - vout) * duty / (l_eff * f);
  if (i_rip > 2.0 * i_ph) return false;  // Require CCM, as optimize_buck.
  const double nd = nn * duty;
  const double frac = nd - std::floor(nd);
  const double canc =
      n_phases == 1 ? 1.0 : frac * (1.0 - frac) / (nn * duty * (1.0 - duty));
  const double i_ro = i_rip * canc;

  const double p_out = vout * i;
  const double i_sq = i_ph * i_ph + i_rip * i_rip / 12.0;
  const double r_eff = duty * r_hs + (1.0 - duty) * r_ls + r_dcr;
  const double p_cond = nn * i_sq * r_eff;
  const double v_drive = std::min(dev.vdd_nom_v, vin);
  const double cg_phase = dev.cgate_per_w_f_m * (s.w_hs + s.w_ls);
  const double p_gate = nn * f * cg_phase * v_drive * v_drive;
  const double t_tr = 4.0 * dev.fom_s();
  const double p_overlap = nn * vin * i_ph * t_tr * f;
  const double cd_phase = dev.cdrain_per_w_f_m * (s.w_hs + s.w_ls);
  const double p_coss = nn * f * cd_phase * vin * vin;
  const double p_dead = nn * 2.0 * f * (2.0 * t_tr) * i_ph * 0.65;
  const double cgvdd2 = c.ugc * c.vdd_core * c.vdd_core;
  const double f_ctrl = f * nn;
  const double p_per = 1500.0 * 0.2 * cgvdd2 * f_ctrl + 200.0 * nn * 0.2 * cgvdd2 * f +
                       50.0 * cgvdd2 * f_ctrl + 0.3 * nn * cg_phase * v_drive * v_drive * f;
  const double p_in = p_out + p_cond + p_gate + p_overlap + p_coss + p_dead + p_per;

  const double f_eff = nn * f;
  const double ripple = i_ro / (8.0 * f_eff * s.c_out) + i_ro * (c.cap->esr_ohm_f / s.c_out);
  const double per_area = c.buck_per_area[static_cast<std::size_t>(p.variant)];
  const double area_die = 1.15 * (s.area_sw + s.area_c + per_area +
                                  (c.ind->on_die ? s.area_l : 0.0));
  const double area_total = area_die + (c.ind->on_die ? 0.0 : s.area_l);

  fill_metrics(c, p, p_in, ripple, area_total, m);
  check_screen_finite(m);
  return ripple <= c.sys.ripple_max_v && area_die <= p.area_ivr * 1.02;
}

// LDO/DLDO spaces are small; both call the real analyzers directly and treat
// InvalidParameter (pass device too narrow, etc.) as a domain rejection —
// exactly the optimizer's convention.
LdoDesign ldo_design_at(const FunnelCtx& c, const Plan& p, std::uint64_t local) {
  const double drop_frac = c.ldo_drop[local % c.ldo_drop.size()];
  const double decap_frac = c.ldo_decap[local / c.ldo_drop.size()];
  LdoDesign d;
  d.node = c.sys.node;
  d.cap_kind = c.sys.cap_kind;
  d.n_bits = 8;
  const double r_pass = drop_frac * (c.sys.vin_v - c.sys.vout_v) / p.i_ivr;
  d.w_pass_m = c.pass_dev->ron_w_ohm_m / r_pass;
  d.c_out_f = decap_frac * p.usable * c.cap->density_f_m2;
  const double i_lsb = (c.sys.vin_v - c.sys.vout_v) / r_pass / std::pow(2.0, d.n_bits);
  d.f_clk_hz = std::clamp(i_lsb / (0.8 * c.sys.ripple_max_v * d.c_out_f), 10e6, 3e9);
  d.i_quiescent_a = 0.002 * p.i_ivr;
  return d;
}

bool screen_ldo(const FunnelCtx& c, const Plan& p, std::uint64_t local, ScreenMetrics& m) {
  const LdoDesign d = ldo_design_at(c, p, local);
  try {
    const LdoAnalysis a = analyze_ldo(d, c.sys.vin_v, c.sys.vout_v, p.i_ivr);
    fill_metrics(c, p, a.p_in_w, a.ripple_pp_v, a.area_m2, m);
    check_screen_finite(m);
    return a.ripple_pp_v <= c.sys.ripple_max_v && a.area_m2 <= p.area_ivr * 1.05;
  } catch (const InvalidParameter&) {
    return false;
  }
}

DldoDesign dldo_design_at(const FunnelCtx& c, const Plan& p, std::uint64_t local) {
  const auto& [bits, n_comp] = c.dldo_variants[static_cast<std::size_t>(p.variant)];
  const double decap_frac = c.dldo_decap[local % c.dldo_decap.size()];
  const double margin = c.dldo_margin[local / c.dldo_decap.size()];
  DldoDesign d;
  d.node = c.sys.node;
  d.cap_kind = c.sys.cap_kind;
  d.n_bits = bits;
  d.n_comparators = n_comp;
  const double r_pass = 0.2 * (c.sys.vin_v - c.sys.vout_v) / p.i_ivr;
  d.w_pass_m = c.pass_dev->ron_w_ohm_m / r_pass;
  d.c_out_f = decap_frac * p.usable * c.cap->density_f_m2;
  const double segments = std::pow(2.0, bits);
  const double i_lsb = (c.sys.vin_v - c.sys.vout_v) / r_pass / segments;
  const double f_ripple =
      i_lsb / (0.8 * c.sys.ripple_max_v * d.c_out_f * static_cast<double>(n_comp));
  const double f_slew = segments / (1e-6 * static_cast<double>(n_comp));
  d.f_clk_hz = std::clamp(margin * std::max(f_ripple, f_slew), 10e6, 3e9);
  d.i_quiescent_a = 0.002 * p.i_ivr;
  return d;
}

bool screen_dldo(const FunnelCtx& c, const Plan& p, std::uint64_t local, ScreenMetrics& m) {
  const DldoDesign d = dldo_design_at(c, p, local);
  try {
    const DldoAnalysis a = analyze_dldo(d, c.sys.vin_v, c.sys.vout_v, p.i_ivr);
    fill_metrics(c, p, a.p_in_w, a.ripple_pp_v, a.area_m2, m);
    check_screen_finite(m);
    return a.ripple_pp_v <= c.sys.ripple_max_v && a.area_m2 <= p.area_ivr * 1.05;
  } catch (const InvalidParameter&) {
    return false;
  }
}

bool screen_candidate(const FunnelCtx& c, const Plan& p, std::uint64_t local,
                      ScreenMetrics& m) {
  switch (p.kind) {
    case PlanKind::Sc: return screen_sc(c, p, local, m);
    case PlanKind::Buck: return screen_buck(c, p, local, m);
    case PlanKind::Ldo: return screen_ldo(c, p, local, m);
    case PlanKind::Dldo: return screen_dldo(c, p, local, m);
  }
  return false;
}

std::string plan_label(const FunnelCtx& c, const Plan& p, std::uint64_t local) {
  char hbuf[32];
  std::snprintf(hbuf, sizeof(hbuf), " h=%.2f", p.h);
  std::string s;
  switch (p.kind) {
    case PlanKind::Sc: {
      const ScVariantConst& v = c.sc_variants[static_cast<std::size_t>(p.variant)];
      s = std::to_string(v.n) + ":" + std::to_string(v.m) +
          (v.family == ScFamily::SeriesParallel ? " series-parallel SC" : " ladder SC");
      break;
    }
    case PlanKind::Buck:
      s = "buck " + std::to_string(c.buck_phases[static_cast<std::size_t>(p.variant)]) +
          "-phase";
      break;
    case PlanKind::Ldo: s = "LDO"; break;
    case PlanKind::Dldo: {
      const auto& [bits, n_comp] = c.dldo_variants[static_cast<std::size_t>(p.variant)];
      s = "DLDO " + std::to_string(bits) + "b x" + std::to_string(n_comp);
      break;
    }
  }
  s += " @ dist " + std::to_string(p.n_dist) + (p.h < 1.0 ? hbuf : "") + " #" +
       std::to_string(local);
  return s;
}

// ---------------------------------------------------------------------------
// Stage 2.5: exact static re-derivation of a frontier candidate
// ---------------------------------------------------------------------------

// Applies the hybrid suffix and the system-level efficiency to a re-derived
// DseResult. `p_in_ivr` is the per-IVR input power from the full analyzer.
void finish_design(const FunnelCtx& c, const Plan& p, double p_in_ivr, DseResult& r) {
  r.efficiency = c.sys.p_load_w /
                 (static_cast<double>(p.n_dist) * p_in_ivr + p.p_vrm_in_w);
  if (p.h < 1.0) {
    char hbuf[32];
    std::snprintf(hbuf, sizeof(hbuf), " (h=%.2f)", p.h);
    r.label += hbuf;
  }
}

DseResult materialize(const FunnelCtx& c, const Plan& p, std::uint64_t local) {
  DseResult r;
  r.n_distributed = p.n_dist;
  switch (p.kind) {
    case PlanKind::Sc: {
      r.topology = IvrTopology::SwitchedCapacitor;
      const ScVariantConst& v = c.sc_variants[static_cast<std::size_t>(p.variant)];
      r.label = std::to_string(v.n) + ":" + std::to_string(v.m) + " SC";
      const ScSizing s = sc_sizing(c, p, local);
      if (!s.viable) return r;
      ScDesign d;
      d.node = c.sys.node;
      d.cap_kind = c.sys.cap_kind;
      d.n = v.n;
      d.m = v.m;
      d.family = v.family;
      d.c_fly_f = s.c_fly;
      d.c_out_f = s.c_out;
      d.g_tot_s = s.g_tot;
      d.f_sw_hz = s.f_max;
      d.duty = 0.5;
      d.n_interleave = s.n_il;
      const ScRegulated reg = analyze_sc_regulated(d, c.sys.vin_v, c.sys.vout_v, p.i_ivr);
      if (!reg.feasible) return r;
      const ScAnalysis& a = reg.analysis;
      r.feasible = a.ripple_pp_v <= c.sys.ripple_max_v * 1.05 &&
                   a.area_m2 <= p.area_ivr * 1.02;
      r.ripple_pp_v = a.ripple_pp_v;
      r.f_sw_hz = reg.f_sw_used_hz;
      r.area_m2 = a.area_m2 * p.n_dist;
      r.n_interleave = s.n_il;
      r.sc = d;
      finish_design(c, p, a.p_in_w, r);
      return r;
    }
    case PlanKind::Buck: {
      r.topology = IvrTopology::Buck;
      r.label = "buck";
      const BuckSizing s = buck_sizing(c, p, local);
      if (!s.viable) return r;
      BuckDesign d;
      d.node = c.sys.node;
      d.inductor = c.sys.inductor;
      d.cap_kind = c.sys.cap_kind;
      d.l_per_phase_h = s.l_phase;
      d.f_sw_hz = s.f_sw;
      d.n_phases = c.buck_phases[static_cast<std::size_t>(p.variant)];
      d.w_high_m = s.w_hs;
      d.w_low_m = s.w_ls;
      d.c_out_f = s.c_out;
      try {
        const BuckAnalysis a = analyze_buck(d, c.sys.vin_v, c.sys.vout_v, p.i_ivr);
        if (a.i_ripple_phase_a > 2.0 * p.i_ivr / d.n_phases) return r;  // CCM.
        r.feasible =
            a.ripple_pp_v <= c.sys.ripple_max_v && a.area_die_m2 <= p.area_ivr * 1.02;
        r.ripple_pp_v = a.ripple_pp_v;
        r.f_sw_hz = s.f_sw;
        r.area_m2 = a.area_m2 * p.n_dist;
        r.n_interleave = d.n_phases;
        r.buck = d;
        finish_design(c, p, a.p_in_w, r);
      } catch (const InvalidParameter&) {
        // Domain rejection: the frontier point degrades to infeasible.
      }
      return r;
    }
    case PlanKind::Ldo: {
      r.topology = IvrTopology::LinearRegulator;
      r.label = "LDO";
      const LdoDesign d = ldo_design_at(c, p, local);
      try {
        const LdoAnalysis a = analyze_ldo(d, c.sys.vin_v, c.sys.vout_v, p.i_ivr);
        r.feasible =
            a.ripple_pp_v <= c.sys.ripple_max_v && a.area_m2 <= p.area_ivr * 1.05;
        r.ripple_pp_v = a.ripple_pp_v;
        r.f_sw_hz = d.f_clk_hz;
        r.area_m2 = a.area_m2 * p.n_dist;
        r.ldo = d;
        finish_design(c, p, a.p_in_w, r);
      } catch (const InvalidParameter&) {
      }
      return r;
    }
    case PlanKind::Dldo: {
      r.topology = IvrTopology::DigitalLdo;
      const auto& [bits, n_comp] = c.dldo_variants[static_cast<std::size_t>(p.variant)];
      (void)bits;
      r.label = "DLDO x" + std::to_string(n_comp);
      const DldoDesign d = dldo_design_at(c, p, local);
      try {
        const DldoAnalysis a = analyze_dldo(d, c.sys.vin_v, c.sys.vout_v, p.i_ivr);
        r.feasible =
            a.ripple_pp_v <= c.sys.ripple_max_v && a.area_m2 <= p.area_ivr * 1.05;
        r.ripple_pp_v = a.ripple_pp_v;
        r.f_sw_hz = d.f_clk_hz;
        r.area_m2 = a.area_m2 * p.n_dist;
        r.n_interleave = n_comp;
        r.dldo = d;
        finish_design(c, p, a.p_in_w, r);
      } catch (const InvalidParameter&) {
      }
      return r;
    }
  }
  return r;
}

// ---------------------------------------------------------------------------
// Stage 3: frontier simulation through the content-addressed cache
// ---------------------------------------------------------------------------

struct SimOut {
  double droop_pp_v = 0.0;
  double v_mean_v = 0.0;
};

struct SimCache {
  std::mutex mu;
  std::unordered_map<std::string, SimOut> map;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

SimCache& sim_cache() {
  static SimCache* c = new SimCache;
  return *c;
}

// Content address of one frontier simulation: the canonical JSON of every
// input that determines the waveform. A SystemParams change that leaves a
// frontier design byte-identical (e.g. a new inductor technology for an SC
// design) therefore hits the cache.
std::string sim_key(const FunnelCtx& c, const Plan& p, const DseResult& d) {
  json::Value design;
  switch (d.topology) {
    case IvrTopology::SwitchedCapacitor: design = to_json(d.sc); break;
    case IvrTopology::Buck: design = to_json(d.buck); break;
    case IvrTopology::LinearRegulator: design = to_json(d.ldo); break;
    case IvrTopology::DigitalLdo: design = to_json(d.dldo); break;
  }
  json::Value::Object o;
  o.emplace_back("op", json::Value("funnel_sim"));
  o.emplace_back("topology", json::Value(topology_name(d.topology)));
  o.emplace_back("design", std::move(design));
  o.emplace_back("vin", json::Value(c.sys.vin_v));
  o.emplace_back("vref", json::Value(c.sys.vout_v));
  o.emplace_back("i_avg", json::Value(p.i_ivr));
  o.emplace_back("duration", json::Value(c.spec.sim_duration_s));
  o.emplace_back("dt", json::Value(c.spec.sim_dt_s));
  return json::Value(std::move(o)).write_canonical();
}

// Deterministic load-step trace: a third at the average load, a third at
// 1.6x (the up-step), a third at 0.6x (the release). No RNG — byte-identical
// keys and waveforms across runs.
SimOut simulate_design(const FunnelCtx& c, const Plan& p, const DseResult& d) {
  const std::size_t n = std::max<std::size_t>(
      16, static_cast<std::size_t>(std::llround(c.spec.sim_duration_s / c.spec.sim_dt_s)));
  std::vector<double> trace(n);
  for (std::size_t k = 0; k < n; ++k)
    trace[k] = p.i_ivr * (k < n / 3 ? 1.0 : k < 2 * n / 3 ? 1.6 : 0.6);

  DynWaveform w;
  switch (d.topology) {
    case IvrTopology::SwitchedCapacitor:
      w = sc_combined_response(d.sc, c.sys.vin_v, c.sys.vout_v, trace, c.spec.sim_dt_s);
      break;
    case IvrTopology::Buck:
      w = buck_combined_response(d.buck, c.sys.vin_v, c.sys.vout_v, trace, c.spec.sim_dt_s);
      break;
    case IvrTopology::LinearRegulator:
      w = ldo_combined_response(d.ldo, c.sys.vin_v, c.sys.vout_v, trace, c.spec.sim_dt_s);
      break;
    case IvrTopology::DigitalLdo:
      w = dldo_combined_response(d.dldo, c.sys.vin_v, c.sys.vout_v, trace, c.spec.sim_dt_s);
      break;
  }
  require(!w.v.empty(), "funnel_sim: empty waveform");
  // Settled window: skip the first third (startup at the average load), so
  // the droop covers the up-step and the release.
  const std::size_t start = w.v.size() / 3;
  double lo = w.v[start], hi = w.v[start], sum = 0.0;
  for (std::size_t k = start; k < w.v.size(); ++k) {
    lo = std::min(lo, w.v[k]);
    hi = std::max(hi, w.v[k]);
    sum += w.v[k];
  }
  SimOut out;
  out.droop_pp_v = hi - lo;
  out.v_mean_v = sum / static_cast<double>(w.v.size() - start);
  IVORY_CHECK_FINITE(out.droop_pp_v, "funnel_sim");
  return out;
}

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

// ---------------------------------------------------------------------------
// The funnel
// ---------------------------------------------------------------------------

FunnelCacheStats funnel_sim_cache_stats() {
  SimCache& c = sim_cache();
  std::lock_guard<std::mutex> lock(c.mu);
  return FunnelCacheStats{c.hits, c.misses, c.map.size()};
}

void funnel_sim_cache_clear() {
  SimCache& c = sim_cache();
  std::lock_guard<std::mutex> lock(c.mu);
  c.map.clear();
  c.hits = 0;
  c.misses = 0;
}

ParetoFront funnel_explore(const SystemParams& sys, const FunnelSpec& spec,
                           SweepReport* report) {
  IVORY_TRACE("dse.funnel_explore");
  metrics::registry().counter("dse.sweeps.funnel_explore").add();
  check_system_params(sys);
  check_spec(spec);
  // Whole-sweep fault-injection point, like optimize_topology: in Throw mode
  // the funnel dies before any candidate runs; in EmitNan mode the poisoned
  // load rides into every candidate and trips the finite guards.
  SystemParams s = sys;
  s.p_load_w += fault::inject("funnel_explore");

  const FunnelCtx ctx = build_ctx(s, spec);
  ParetoFront out;
  out.stats.n_screened = ctx.total;
  SweepReport merged;

  // --- Stage 1+2: block-streamed screening with incremental extraction ----
  const double t0 = now_s();
  const std::uint64_t n_blocks =
      ctx.total == 0 ? 0 : (ctx.total + spec.block - 1) / spec.block;
  out.stats.n_blocks = n_blocks;

  struct BlockOut {
    std::vector<FrontEntry> front;  // block-local non-dominated set, index asc
    std::uint64_t survived = 0;
    std::uint64_t feasible = 0;
    std::vector<Diagnostics> skips;
  };
  const std::vector<BlockOut> blocks =
      par::parallel_map<BlockOut>(static_cast<std::size_t>(n_blocks), [&](std::size_t b) {
        BlockOut bo;
        const std::uint64_t lo = static_cast<std::uint64_t>(b) * spec.block;
        const std::uint64_t hi = std::min(ctx.total, lo + spec.block);
        // Locate the plan containing `lo`, then walk forward.
        std::size_t pi =
            static_cast<std::size_t>(
                std::upper_bound(ctx.plans.begin(), ctx.plans.end(), lo,
                                 [](std::uint64_t v, const Plan& pl) { return v < pl.base; }) -
                ctx.plans.begin()) -
            1;
        for (std::uint64_t idx = lo; idx < hi; ++idx) {
          while (idx >= ctx.plans[pi].base + ctx.plans[pi].count) ++pi;
          const Plan& pl = ctx.plans[pi];
          const std::uint64_t local = idx - pl.base;
          ScreenMetrics m;
          bool feasible = false, ok = true;
          try {
            feasible = screen_candidate(ctx, pl, local, m);
          } catch (...) {
            bo.skips.push_back(
                diagnose_current_exception("funnel_screen", plan_label(ctx, pl, local)));
            ok = false;
          }
          if (!ok) continue;
          ++bo.survived;
          if (feasible) {
            ++bo.feasible;
            bo.front.push_back(FrontEntry{idx, m});
          }
        }
        // Reduce the block's feasible set to its non-dominated subset here,
        // inside the parallel region, so the serial merge below only ever
        // sees a few hundred entries per block.
        bo.front = extract_front(bo.front, spec.objectives);
        return bo;
      });

  // Serial merge in block order: Pareto(Pareto(A) u Pareto(B)) =
  // Pareto(A u B), and candidate indices stay ascending across the
  // concatenation, so the earliest-index duplicate tie-break is exact and
  // the front is byte-identical at any thread count. Counters move in bulk
  // (millions of candidates; the per-candidate record_survivor would double
  // the screening cost).
  std::vector<FrontEntry> pool;
  std::uint64_t survived = 0;
  for (const BlockOut& bo : blocks) {
    survived += bo.survived;
    out.stats.n_feasible += bo.feasible;
    pool.insert(pool.end(), bo.front.begin(), bo.front.end());
    for (const Diagnostics& d : bo.skips) merged.skips.push_back(d);
  }
  std::vector<FrontEntry> front = extract_front(pool, spec.objectives);
  merged.n_evaluated += ctx.total;
  merged.n_survived += survived;
  metrics::registry().counter("dse.candidates.evaluated").add(ctx.total);
  metrics::registry().counter("dse.candidates.survived").add(survived);
  if (!merged.skips.empty())
    metrics::registry().counter("dse.candidates.quarantined").add(merged.skips.size());
  if (survived == 0 && ctx.total > 0) {
    if (report) report->merge(merged);
    throw_all_failed("funnel_explore", merged);
  }

  // Final ordering + front-size cap: best screen efficiency first, candidate
  // index as the deterministic tie-break. The cap trims the low-efficiency
  // tail of the front.
  std::sort(front.begin(), front.end(), [](const FrontEntry& a, const FrontEntry& b) {
    if (a.m.efficiency != b.m.efficiency) return a.m.efficiency > b.m.efficiency;
    return a.index < b.index;
  });
  if (front.size() > spec.front_cap) front.resize(spec.front_cap);
  out.stats.frontier_size = front.size();
  out.stats.screen_s = now_s() - t0;

  // --- Stage 2.5: exact static re-derivation of the frontier --------------
  struct PointCell {
    EvalOutcome<ParetoPoint> outcome;
  };
  const std::vector<PointCell> cells =
      par::parallel_map<PointCell>(front.size(), [&](std::size_t i) {
        PointCell cell;
        const FrontEntry& e = front[i];
        const std::size_t pi =
            static_cast<std::size_t>(
                std::upper_bound(ctx.plans.begin(), ctx.plans.end(), e.index,
                                 [](std::uint64_t v, const Plan& pl) { return v < pl.base; }) -
                ctx.plans.begin()) -
            1;
        const Plan& pl = ctx.plans[pi];
        const std::uint64_t local = e.index - pl.base;
        cell.outcome =
            quarantine("funnel_frontier", plan_label(ctx, pl, local), [&]() -> ParetoPoint {
              ParetoPoint pt;
              pt.index = e.index;
              pt.ivr_load_frac = pl.h;
              pt.screen = e.m;
              pt.design = materialize(ctx, pl, local);
              return pt;
            });
        return cell;
      });
  for (const PointCell& cell : cells) {
    if (cell.outcome.ok()) {
      merged.record_survivor();
      out.points.push_back(cell.outcome.value());
    } else {
      merged.record_skip(cell.outcome.diagnostics());
    }
  }

  // --- Stage 3: simulate the frontier through the sim cache ---------------
  if (spec.simulate && !out.points.empty()) {
    const double t1 = now_s();
    SimCache& cache = sim_cache();
    // Serial pass in frontier order: compute keys, satisfy hits, collect
    // misses. Keeping the counters out of the parallel region makes the
    // hit/miss totals thread-count-invariant.
    std::vector<std::string> keys(out.points.size());
    std::vector<std::size_t> plan_of(out.points.size());
    std::vector<std::size_t> miss;
    {
      std::lock_guard<std::mutex> lock(cache.mu);
      for (std::size_t i = 0; i < out.points.size(); ++i) {
        ParetoPoint& pt = out.points[i];
        if (!pt.design.feasible) continue;  // Simulate realizable designs only.
        const std::size_t pi =
            static_cast<std::size_t>(
                std::upper_bound(ctx.plans.begin(), ctx.plans.end(), pt.index,
                                 [](std::uint64_t v, const Plan& pl) { return v < pl.base; }) -
                ctx.plans.begin()) -
            1;
        plan_of[i] = pi;
        keys[i] = sim_key(ctx, ctx.plans[pi], pt.design);
        const auto it = cache.map.find(keys[i]);
        if (it != cache.map.end()) {
          ++cache.hits;
          ++out.stats.sim_cache_hits;
          pt.simulated = true;
          pt.sim_cached = true;
          pt.droop_pp_v = it->second.droop_pp_v;
          pt.v_mean_v = it->second.v_mean_v;
        } else {
          ++cache.misses;
          ++out.stats.sim_cache_misses;
          miss.push_back(i);
        }
      }
    }
    const std::vector<EvalOutcome<SimOut>> sims =
        par::parallel_map<EvalOutcome<SimOut>>(miss.size(), [&](std::size_t k) {
          const std::size_t i = miss[k];
          const ParetoPoint& pt = out.points[i];
          return quarantine("funnel_sim", pt.design.label + " @ dist " +
                                              std::to_string(pt.design.n_distributed),
                            [&] {
                              return simulate_design(ctx, ctx.plans[plan_of[i]], pt.design);
                            });
        });
    {
      std::lock_guard<std::mutex> lock(cache.mu);
      for (std::size_t k = 0; k < miss.size(); ++k) {
        const std::size_t i = miss[k];
        if (sims[k].ok()) {
          merged.record_survivor();
          ParetoPoint& pt = out.points[i];
          pt.simulated = true;
          pt.droop_pp_v = sims[k].value().droop_pp_v;
          pt.v_mean_v = sims[k].value().v_mean_v;
          cache.map.emplace(keys[i], sims[k].value());  // Failures never cached.
        } else {
          merged.record_skip(sims[k].diagnostics());
        }
      }
    }
    out.stats.sim_s = now_s() - t1;
  }

  if (report) report->merge(merged);
  return out;
}

std::vector<DseResult> explore(const SystemParams& sys, const FunnelSpec& spec,
                               OptTarget target, SweepReport* report) {
  const ParetoFront front = funnel_explore(sys, spec, report);
  std::vector<DseResult> all;
  all.reserve(front.points.size());
  for (const ParetoPoint& pt : front.points) all.push_back(pt.design);
  sort_dse_results(all, target);
  return all;
}

}  // namespace ivory::core
