#include "core/buck_model.hpp"

#include <cmath>

#include "common/error.hpp"

namespace ivory::core {

double interleave_cancellation(int n_phases, double duty) {
  require(n_phases >= 1, "interleave_cancellation: need at least one phase");
  require(duty > 0.0 && duty < 1.0, "interleave_cancellation: duty must be in (0, 1)");
  if (n_phases == 1) return 1.0;
  const double nd = static_cast<double>(n_phases) * duty;
  const double frac = nd - std::floor(nd);
  // Classic multiphase ripple-current cancellation (summed inductor current
  // ripple relative to one phase's ripple). Exactly zero when N*D is an
  // integer.
  return frac * (1.0 - frac) / (static_cast<double>(n_phases) * duty * (1.0 - duty));
}

BuckAnalysis analyze_buck(const BuckDesign& d, double vin_v, double vout_v, double i_load_a) {
  IVORY_CHECK_FINITE(vin_v, "analyze_buck");
  IVORY_CHECK_FINITE(vout_v, "analyze_buck");
  IVORY_CHECK_FINITE(i_load_a, "analyze_buck");
  require(vin_v > 0.0, "analyze_buck: vin must be positive");
  require(vout_v > 0.0 && vout_v < vin_v, "analyze_buck: need 0 < vout < vin");
  require(i_load_a > 0.0, "analyze_buck: load current must be positive");
  require(d.l_per_phase_h > 0.0, "BuckDesign: inductance must be positive");
  require(d.f_sw_hz > 0.0, "BuckDesign: f_sw must be positive");
  require(d.n_phases >= 1, "BuckDesign: need at least one phase");
  require(d.w_high_m > 0.0 && d.w_low_m > 0.0, "BuckDesign: switch widths must be positive");
  require(d.c_out_f > 0.0, "BuckDesign: output capacitance must be positive");

  // Device class: the power train sees the full input voltage.
  const tech::SwitchTech& core_dev = tech::switch_tech(d.node, tech::DeviceClass::Core);
  const tech::SwitchTech& dev = vin_v > core_dev.vmax_v
                                    ? tech::switch_tech(d.node, tech::DeviceClass::Io)
                                    : core_dev;
  const tech::InductorTech& ind = tech::inductor_tech(d.inductor);
  const tech::CapacitorTech cap = tech::capacitor_tech(d.node, d.cap_kind);

  BuckAnalysis a;
  a.vin_v = vin_v;
  a.vout_v = vout_v;
  a.i_load_a = i_load_a;

  const double n = static_cast<double>(d.n_phases);
  const double i_ph = i_load_a / n;
  const double r_hs = dev.ron(d.w_high_m);
  const double r_ls = dev.ron(d.w_low_m);
  const double r_dcr = ind.dcr(d.l_per_phase_h);
  a.l_eff_h =
      d.ignore_l_rolloff ? d.l_per_phase_h : ind.inductance_at(d.l_per_phase_h, d.f_sw_hz);

  // CCM volt-second balance with conduction drops, two fixed-point passes.
  double duty = vout_v / vin_v;
  for (int pass = 0; pass < 2; ++pass) {
    const double drop_on = i_ph * (r_hs + r_dcr);
    const double drop_off = i_ph * (r_ls + r_dcr);
    duty = (vout_v + drop_off) / std::max(vin_v - drop_on + drop_off, 1e-9);
  }
  require(duty > 0.0 && duty < 1.0, "analyze_buck: duty out of range — vout unreachable");
  a.duty = duty;

  a.i_ripple_phase_a = (vin_v - vout_v) * duty / (a.l_eff_h * d.f_sw_hz);
  a.i_ripple_out_a = a.i_ripple_phase_a * interleave_cancellation(d.n_phases, duty);

  a.p_out_w = vout_v * i_load_a;

  // Conduction: RMS current includes the triangular ripple term.
  const double i_sq = i_ph * i_ph + a.i_ripple_phase_a * a.i_ripple_phase_a / 12.0;
  const double r_eff = duty * r_hs + (1.0 - duty) * r_ls + r_dcr;
  a.p_conduction_w = n * i_sq * r_eff;

  // Gate drive swings at most the available input rail (drivers are supplied
  // from vin), capped by the device's nominal gate rating.
  const double v_drive = std::min(dev.vdd_nom_v, vin_v);
  const double cg_phase = dev.cgate(d.w_high_m) + dev.cgate(d.w_low_m);
  a.p_gate_w = n * d.f_sw_hz * cg_phase * v_drive * v_drive;

  // Transition (V-I overlap): transition time ~ 4x the device Ron*Cg figure
  // of merit (self-loaded driver), two transitions per cycle.
  const double t_tr = 4.0 * dev.fom_s();
  a.p_overlap_w = n * vin_v * i_ph * t_tr * d.f_sw_hz;

  // Junction capacitance of the switching node charged to vin each cycle.
  const double cd_phase = dev.cdrain(d.w_high_m) + dev.cdrain(d.w_low_m);
  a.p_coss_w = n * d.f_sw_hz * cd_phase * vin_v * vin_v;

  // Body-diode conduction during dead time (both edges).
  const double t_dead = 2.0 * t_tr;
  const double v_diode = 0.65;
  a.p_deadtime_w = n * 2.0 * d.f_sw_hz * t_dead * i_ph * v_diode;

  const PeripheralBudget per =
      peripheral_budget(d.node, d.f_sw_hz, d.n_phases, n * cg_phase, v_drive);
  a.p_peripheral_w = per.total_power();

  a.p_in_w = a.p_out_w + a.p_conduction_w + a.p_gate_w + a.p_overlap_w + a.p_coss_w +
             a.p_deadtime_w + a.p_peripheral_w;
  a.efficiency = a.p_out_w / a.p_in_w;

  // Output ripple: capacitive charging of C_out by the residual current
  // ripple at the N-phase effective frequency, plus the ESR step.
  const double f_eff = n * d.f_sw_hz;
  a.ripple_pp_v = a.i_ripple_out_a / (8.0 * f_eff * d.c_out_f) +
                  a.i_ripple_out_a * cap.esr(d.c_out_f);

  // Area: switches and decap on die; inductors wherever the technology puts
  // them.
  const double area_sw = n * (dev.area(d.w_high_m) + dev.area(d.w_low_m));
  const double area_cap = cap.area(d.c_out_f);
  const double area_ind = n * ind.area(d.l_per_phase_h);
  a.area_die_m2 = 1.15 * (area_sw + area_cap + per.area_m2 + (ind.on_die ? area_ind : 0.0));
  a.area_offdie_m2 = ind.on_die ? 0.0 : area_ind;
  a.area_m2 = a.area_die_m2 + a.area_offdie_m2;
  IVORY_CHECK_FINITE(a.efficiency, "analyze_buck");
  IVORY_CHECK_FINITE(a.ripple_pp_v, "analyze_buck");
  IVORY_CHECK_FINITE(a.area_m2, "analyze_buck");
  return a;
}

}  // namespace ivory::core
