#include "core/ldo_model.hpp"

#include <cmath>

#include "common/error.hpp"

namespace ivory::core {

LdoAnalysis analyze_ldo(const LdoDesign& d, double vin_v, double vout_v, double i_load_a) {
  IVORY_CHECK_FINITE(vin_v, "analyze_ldo");
  IVORY_CHECK_FINITE(vout_v, "analyze_ldo");
  IVORY_CHECK_FINITE(i_load_a, "analyze_ldo");
  require(vin_v > 0.0, "analyze_ldo: vin must be positive");
  require(vout_v > 0.0 && vout_v < vin_v, "analyze_ldo: need 0 < vout < vin");
  require(i_load_a > 0.0, "analyze_ldo: load current must be positive");
  require(d.w_pass_m > 0.0, "LdoDesign: pass width must be positive");
  require(d.n_bits >= 1 && d.n_bits <= 16, "LdoDesign: bits must be in [1, 16]");
  require(d.f_clk_hz > 0.0, "LdoDesign: clock must be positive");
  require(d.c_out_f > 0.0, "LdoDesign: output capacitance must be positive");
  require(d.i_quiescent_a >= 0.0, "LdoDesign: quiescent current must be non-negative");

  // The pass device must survive the full input voltage.
  const tech::SwitchTech& core_dev = tech::switch_tech(d.node, tech::DeviceClass::Core);
  const tech::SwitchTech& dev = vin_v > core_dev.vmax_v
                                    ? tech::switch_tech(d.node, tech::DeviceClass::Io)
                                    : core_dev;

  LdoAnalysis a;
  a.vin_v = vin_v;
  a.vout_v = vout_v;
  a.i_load_a = i_load_a;

  a.dropout_v = dev.ron(d.w_pass_m) * i_load_a;
  require(vin_v - vout_v >= a.dropout_v,
          "analyze_ldo: pass device too narrow for this dropout/load");

  a.p_out_w = vout_v * i_load_a;
  a.p_pass_w = (vin_v - vout_v) * i_load_a;
  a.p_quiescent_w = vin_v * d.i_quiescent_a;

  // Digital feedback: controller + comparator clocked at f_clk, plus the
  // gate charge of the unary pass segments that toggle (~2 LSB worth per
  // decision on average).
  const double segments = std::pow(2.0, d.n_bits);
  const double c_lsb = dev.cgate(d.w_pass_m) / segments;
  const PeripheralBudget per =
      peripheral_budget(d.node, d.f_clk_hz, 1, 2.0 * c_lsb, dev.vdd_nom_v);
  a.p_peripheral_w = per.total_power();

  a.p_in_w = a.p_out_w + a.p_pass_w + a.p_quiescent_w + a.p_peripheral_w;
  a.efficiency = a.p_out_w / a.p_in_w;
  a.current_efficiency = i_load_a / (i_load_a + d.i_quiescent_a +
                                     a.p_peripheral_w / std::max(vin_v, 1e-9));

  // Limit cycle: the loop dithers by one LSB of pass current each clock; the
  // output integrates that error on C_out for one clock period.
  const double i_lsb = (vin_v - vout_v) / dev.ron(d.w_pass_m) / segments;
  a.ripple_pp_v = std::max(i_lsb, 0.0) / (d.f_clk_hz * d.c_out_f);

  const tech::CapacitorTech cap = tech::capacitor_tech(d.node, d.cap_kind);
  a.area_m2 = 1.15 * (dev.area(d.w_pass_m) + cap.area(d.c_out_f) + per.area_m2);
  IVORY_CHECK_FINITE(a.efficiency, "analyze_ldo");
  IVORY_CHECK_FINITE(a.ripple_pp_v, "analyze_ldo");
  IVORY_CHECK_FINITE(a.area_m2, "analyze_ldo");
  return a;
}

}  // namespace ivory::core
