// Dynamic (transient) models of IVR output voltage (paper Section 3.3).
//
// Two complementary models are combined:
//
//  * The *cycle-by-cycle* model advances the output voltage once per
//    converter (sub-)cycle. For the SC converter it is paper eq. (2):
//      V[k+1] = V[k] + ( -Iout[k]*T + (n*Vin - V[k])*Ceq*(1 - e^{-T/(2 Req Ceq)}) ) / Co
//    with Ceq and Req derived so the steady state reproduces the static
//    R_SSL/R_FSL impedances. The buck model integrates the averaged CCM
//    state (inductor current + output voltage) with a PI duty controller;
//    an N-interleaved buck is folded into one equivalent converter with
//    L/N (the paper's "N parallel-connected buck converters" equivalence).
//    The digital LDO steps a quantized pass array from a clocked comparator.
//
//  * The *in-cycle* model captures response above the switching frequency,
//    where the converter cannot regulate (the switches act as a zero-order
//    hold, eqs. (3)-(5)) and only the fly/output capacitance connected to
//    the load decouples: it integrates the within-cycle deviation of the
//    load current on that capacitance.
//
// The combined waveform is the sum of the two — valid across the full
// frequency range, and orders of magnitude faster than SPICE (Fig. 4).
#pragma once

#include <complex>
#include <vector>

#include "core/buck_model.hpp"
#include "core/ldo_model.hpp"
#include "core/sc_model.hpp"

namespace ivory::core {

/// A simulated output-voltage waveform, sampled at dt_s.
struct DynWaveform {
  double dt_s = 0.0;
  std::vector<double> v;
};

/// SC feedback scheme for the cycle model.
enum class ScControl {
  FreeRunning,  ///< Every sub-cycle transfers charge (no regulation).
  LowerBound,   ///< Hysteretic pulse-skipping: transfer only when V < Vref.
};

/// Cycle-by-cycle SC response to a load-current trace sampled at dt_s.
/// The output is sampled at the interleave sub-cycle rate and resampled to
/// dt_s. `vref_v` is the regulation target (ignored when free-running).
DynWaveform sc_cycle_response(const ScDesign& d, double vin_v, double vref_v,
                              const std::vector<double>& i_load_a, double dt_s,
                              ScControl control = ScControl::LowerBound);

/// Fully trace-driven variant covering the paper's three validation
/// scenarios at once: `vin` may vary (line regulation), `vref` may vary
/// (reference regulation / fast DVFS), and the load varies (load
/// regulation). All three traces share dt_s and length.
DynWaveform sc_cycle_response_traces(const ScDesign& d, const std::vector<double>& vin_v,
                                     const std::vector<double>& vref_v,
                                     const std::vector<double>& i_load_a, double dt_s,
                                     ScControl control = ScControl::LowerBound);

/// Cycle-by-cycle buck response with a PI duty-cycle controller.
DynWaveform buck_cycle_response(const BuckDesign& d, double vin_v, double vref_v,
                                const std::vector<double>& i_load_a, double dt_s);

/// Cycle-by-cycle digital-LDO response (clocked bang-bang pass array).
DynWaveform ldo_cycle_response(const LdoDesign& d, double vin_v, double vref_v,
                               const std::vector<double>& i_load_a, double dt_s);

/// In-cycle response: the voltage deviation caused by within-cycle load
/// current variation on the high-frequency output capacitance `c_hf_f`.
/// Deviations are integrated per converter cycle `t_cycle_s` (the cycle
/// average is what the cycle-by-cycle model already handles).
std::vector<double> in_cycle_response(const std::vector<double>& i_load_a, double dt_s,
                                      double t_cycle_s, double c_hf_f);

/// Supply noise added by a grid path (R, L) carrying the load current:
/// -R * (i - mean(i)) - L * di/dt.
std::vector<double> grid_noise(const std::vector<double>& i_load_a, double dt_s, double r_ohm,
                               double l_h);

/// Combined cycle + in-cycle SC waveform (the full Ivory dynamic model).
DynWaveform sc_combined_response(const ScDesign& d, double vin_v, double vref_v,
                                 const std::vector<double>& i_load_a, double dt_s,
                                 ScControl control = ScControl::LowerBound);

/// Combined cycle + in-cycle buck waveform.
DynWaveform buck_combined_response(const BuckDesign& d, double vin_v, double vref_v,
                                   const std::vector<double>& i_load_a, double dt_s);

/// Combined cycle + in-cycle LDO waveform.
DynWaveform ldo_combined_response(const LdoDesign& d, double vin_v, double vref_v,
                                  const std::vector<double>& i_load_a, double dt_s);

// ---------------------------------------------------------------------------
// Frequency-domain noise transfer (paper eqs. (3)-(5))
// ---------------------------------------------------------------------------

/// Interference transfer V_out/V_noise of a generalized feedback converter:
///   H(jw) = F_L / (1 + F_L * F_ctl * F_sw),     (eq. 3)
/// with the switches modeled as a zero-order hold
///   F_sw(jw) = (1 - e^{-jw T}) / (jw T),        (eq. 4)
/// so that above f_sw, F_sw -> 0 and H -> F_L    (eq. 5):
/// the converter has no regulation authority there and the passive output
/// network alone shapes the noise.
struct NoiseTransfer {
  double f_sw_hz = 0.0;
  double c_hf_f = 0.0;       ///< Output/fly capacitance facing the load.
  double r_out_ohm = 0.0;    ///< Converter output impedance feeding that cap.
  double ctrl_gain = 10.0;   ///< DC loop gain of controller + driver.
  double ctrl_delay_s = 0.0; ///< Feedback latency (defaults to half a cycle).

  std::complex<double> f_load(double f_hz) const;
  std::complex<double> f_zoh(double f_hz) const;
  std::complex<double> rejection(double f_hz) const;
};

}  // namespace ivory::core
