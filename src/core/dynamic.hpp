// Dynamic (transient) models of IVR output voltage (paper Section 3.3).
//
// Two complementary models are combined:
//
//  * The *cycle-by-cycle* model advances the output voltage once per
//    converter (sub-)cycle. For the SC converter it is paper eq. (2):
//      V[k+1] = V[k] + ( -Iout[k]*T + (n*Vin - V[k])*Ceq*(1 - e^{-T/(2 Req Ceq)}) ) / Co
//    with Ceq and Req derived so the steady state reproduces the static
//    R_SSL/R_FSL impedances. The buck model integrates the averaged CCM
//    state (inductor current + output voltage) with a PI duty controller;
//    an N-interleaved buck is folded into one equivalent converter with
//    L/N (the paper's "N parallel-connected buck converters" equivalence).
//    The digital LDO steps a quantized pass array from a clocked comparator.
//
//  * The *in-cycle* model captures response above the switching frequency,
//    where the converter cannot regulate (the switches act as a zero-order
//    hold, eqs. (3)-(5)) and only the fly/output capacitance connected to
//    the load decouples: it integrates the within-cycle deviation of the
//    load current on that capacitance.
//
// The combined waveform is the sum of the two — valid across the full
// frequency range, and orders of magnitude faster than SPICE (Fig. 4).
#pragma once

#include <algorithm>
#include <cmath>
#include <complex>
#include <limits>
#include <vector>

#include "core/buck_model.hpp"
#include "core/dldo_model.hpp"
#include "core/ldo_model.hpp"
#include "core/sc_model.hpp"

namespace ivory::core {

/// A simulated output-voltage waveform, sampled at dt_s.
struct DynWaveform {
  double dt_s = 0.0;
  std::vector<double> v;
};

/// Mean of trace samples covering a time window, answered in O(1) from a
/// prefix sum built once per trace. The cycle loops ask for a window mean
/// every switching period; a naive per-window rescan made the cycle models
/// O(cycles x window) — quadratic in trace length when f_sw * dt is small.
///
/// Window edges that are mathematically exact multiples of dt can carry
/// floating-point residue (k * t_cycle / dt = 61.999...98 instead of 62 for
/// dt = 1/3e6, t_cycle = 2*dt, k = 31); plain truncation then assigns the
/// boundary sample to the wrong cycle. Both entry points therefore snap a
/// quotient that lands within a few ULP of an integer onto that integer
/// before truncating, and over_cycle() derives *both* edges from the integer
/// cycle index so consecutive cycles tile the trace without gaps or overlap.
class WindowMean {
 public:
  WindowMean(const std::vector<double>& i, double dt)
      : dt_(dt), n_(i.size()), prefix_(i.size() + 1, 0.0) {
    for (std::size_t k = 0; k < n_; ++k) prefix_[k + 1] = prefix_[k] + i[k];
  }

  /// Mean over switching cycle k of period t_cycle: the samples in
  /// [k*t_cycle, (k+1)*t_cycle). Preferred by cycle loops — the edge times
  /// are formed from the integer cycle index here, with the same arithmetic
  /// for a cycle's upper edge and the next cycle's lower edge.
  double over_cycle(std::size_t k, double t_cycle) const {
    return window(index_of(static_cast<double>(k) * t_cycle),
                  index_of(static_cast<double>(k + 1) * t_cycle));
  }

  /// Mean over an arbitrary window [t0, t1).
  double operator()(double t0, double t1) const {
    return window(index_of(t0), index_of(t1));
  }

  /// Sample index of time t: trunc(t / dt), except that a quotient within a
  /// few ULP of an integer counts as that integer.
  std::size_t index_of(double t) const {
    const double s = std::max(t, 0.0) / dt_;
    const double r = std::nearbyint(s);
    if (std::abs(s - r) <=
        32.0 * std::numeric_limits<double>::epsilon() * std::max(r, 1.0))
      return static_cast<std::size_t>(r);
    return static_cast<std::size_t>(s);
  }

 private:
  // Clamps indices into the trace and guarantees a non-empty window.
  double window(std::size_t k0, std::size_t k1) const {
    k0 = std::min(k0, n_ - 1);
    k1 = std::min(std::max(k1, k0 + 1), n_);
    return (prefix_[k1] - prefix_[k0]) / static_cast<double>(k1 - k0);
  }

  double dt_;
  std::size_t n_;
  std::vector<double> prefix_;
};

/// SC feedback scheme for the cycle model.
enum class ScControl {
  FreeRunning,  ///< Every sub-cycle transfers charge (no regulation).
  LowerBound,   ///< Hysteretic pulse-skipping: transfer only when V < Vref.
};

/// Cycle-by-cycle SC response to a load-current trace sampled at dt_s.
/// The output is sampled at the interleave sub-cycle rate and resampled to
/// dt_s. `vref_v` is the regulation target (ignored when free-running).
DynWaveform sc_cycle_response(const ScDesign& d, double vin_v, double vref_v,
                              const std::vector<double>& i_load_a, double dt_s,
                              ScControl control = ScControl::LowerBound);

/// Fully trace-driven variant covering the paper's three validation
/// scenarios at once: `vin` may vary (line regulation), `vref` may vary
/// (reference regulation / fast DVFS), and the load varies (load
/// regulation). All three traces share dt_s and length.
DynWaveform sc_cycle_response_traces(const ScDesign& d, const std::vector<double>& vin_v,
                                     const std::vector<double>& vref_v,
                                     const std::vector<double>& i_load_a, double dt_s,
                                     ScControl control = ScControl::LowerBound);

/// Cycle-by-cycle buck response with a PI duty-cycle controller.
DynWaveform buck_cycle_response(const BuckDesign& d, double vin_v, double vref_v,
                                const std::vector<double>& i_load_a, double dt_s);

/// Cycle-by-cycle digital-LDO response (clocked bang-bang pass array).
DynWaveform ldo_cycle_response(const LdoDesign& d, double vin_v, double vref_v,
                               const std::vector<double>& i_load_a, double dt_s);

/// Cycle-by-cycle discrete-time digital-LDO response with time-interleaved
/// comparators: one bang-bang code step per decision interval
/// 1 / (n_comparators * f_clk).
DynWaveform dldo_cycle_response(const DldoDesign& d, double vin_v, double vref_v,
                                const std::vector<double>& i_load_a, double dt_s);

/// In-cycle response: the voltage deviation caused by within-cycle load
/// current variation on the high-frequency output capacitance `c_hf_f`.
/// Deviations are integrated per converter cycle `t_cycle_s` (the cycle
/// average is what the cycle-by-cycle model already handles).
std::vector<double> in_cycle_response(const std::vector<double>& i_load_a, double dt_s,
                                      double t_cycle_s, double c_hf_f);

/// Supply noise added by a grid path (R, L) carrying the load current:
/// -R * (i - mean(i)) - L * di/dt.
std::vector<double> grid_noise(const std::vector<double>& i_load_a, double dt_s, double r_ohm,
                               double l_h);

/// Combined cycle + in-cycle SC waveform (the full Ivory dynamic model).
DynWaveform sc_combined_response(const ScDesign& d, double vin_v, double vref_v,
                                 const std::vector<double>& i_load_a, double dt_s,
                                 ScControl control = ScControl::LowerBound);

/// Combined cycle + in-cycle buck waveform.
DynWaveform buck_combined_response(const BuckDesign& d, double vin_v, double vref_v,
                                   const std::vector<double>& i_load_a, double dt_s);

/// Combined cycle + in-cycle LDO waveform.
DynWaveform ldo_combined_response(const LdoDesign& d, double vin_v, double vref_v,
                                  const std::vector<double>& i_load_a, double dt_s);

/// Combined cycle + in-cycle digital-LDO waveform.
DynWaveform dldo_combined_response(const DldoDesign& d, double vin_v, double vref_v,
                                   const std::vector<double>& i_load_a, double dt_s);

// ---------------------------------------------------------------------------
// Frequency-domain noise transfer (paper eqs. (3)-(5))
// ---------------------------------------------------------------------------

/// Interference transfer V_out/V_noise of a generalized feedback converter:
///   H(jw) = F_L / (1 + F_L * F_ctl * F_sw),     (eq. 3)
/// with the switches modeled as a zero-order hold
///   F_sw(jw) = (1 - e^{-jw T}) / (jw T),        (eq. 4)
/// so that above f_sw, F_sw -> 0 and H -> F_L    (eq. 5):
/// the converter has no regulation authority there and the passive output
/// network alone shapes the noise.
struct NoiseTransfer {
  double f_sw_hz = 0.0;
  double c_hf_f = 0.0;       ///< Output/fly capacitance facing the load.
  double r_out_ohm = 0.0;    ///< Converter output impedance feeding that cap.
  double ctrl_gain = 10.0;   ///< DC loop gain of controller + driver.
  double ctrl_delay_s = 0.0; ///< Feedback latency (defaults to half a cycle).

  std::complex<double> f_load(double f_hz) const;
  std::complex<double> f_zoh(double f_hz) const;
  std::complex<double> rejection(double f_hz) const;
};

}  // namespace ivory::core
