#include "core/sc_topology.hpp"

#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/matrix.hpp"
#include "spice/phase_clock.hpp"

namespace ivory::core {

double ChargeVectors::sum_ac() const {
  double acc = 0.0;
  for (double a : a_cap) acc += a;
  return acc;
}

double ChargeVectors::sum_ar() const {
  double acc = 0.0;
  for (double a : a_switch) acc += a;
  return acc;
}

ScTopology series_parallel(int n) {
  require(n >= 2, "series_parallel: ratio must be n:1 with n >= 2");
  ScTopology t;
  t.name = std::to_string(n) + ":1 series-parallel";
  t.n = n;
  t.m = 1;

  const double vr = 1.0 / static_cast<double>(n);
  std::vector<int> pos, neg;
  for (int k = 0; k < n - 1; ++k) {
    pos.push_back(t.new_node());
    neg.push_back(t.new_node());
    t.caps.push_back({pos.back(), neg.back(), vr, false});
  }
  // Phase A: Vin - C1 - C2 - ... - C(n-1) - Vout in series.
  t.switches.push_back({0, kScVin, pos[0]});
  for (int k = 0; k + 1 < n - 1; ++k) t.switches.push_back({0, neg[static_cast<size_t>(k)],
                                                            pos[static_cast<size_t>(k) + 1]});
  t.switches.push_back({0, neg[static_cast<size_t>(n) - 2], kScVout});
  // Phase B: every cap in parallel across Vout.
  for (int k = 0; k < n - 1; ++k) {
    t.switches.push_back({1, pos[static_cast<size_t>(k)], kScVout});
    t.switches.push_back({1, neg[static_cast<size_t>(k)], kScGnd});
  }
  return t;
}

ScTopology ladder(int n, int m) {
  require(n >= 2 && m >= 1 && m < n, "ladder: need n >= 2 and 1 <= m < n");
  ScTopology t;
  t.name = std::to_string(n) + ":" + std::to_string(m) + " ladder";
  t.n = n;
  t.m = m;

  const double vr = 1.0 / static_cast<double>(n);
  // Rung nodes u_0..u_n at potentials k*Vin/n.
  std::vector<int> u(static_cast<size_t>(n) + 1);
  u[0] = kScGnd;
  u[static_cast<size_t>(n)] = kScVin;
  u[static_cast<size_t>(m)] = kScVout;
  for (int k = 1; k < n; ++k)
    if (k != m) u[static_cast<size_t>(k)] = t.new_node();

  // Interior DC caps hold the rungs. The cap that would sit directly across
  // Vout-gnd is the output bypass and is excluded from the charge analysis.
  for (int k = 1; k < n; ++k) {
    const int a = u[static_cast<size_t>(k)];
    const int b = u[static_cast<size_t>(k) - 1];
    if ((a == kScVout && b == kScGnd) || (a == kScGnd && b == kScVout)) continue;
    t.caps.push_back({a, b, vr, true});
  }
  // Flying caps: bridge rung (k-1, k) in phase A, (k, k+1) in phase B.
  for (int k = 1; k < n; ++k) {
    const int fp = t.new_node();
    const int fn = t.new_node();
    t.caps.push_back({fp, fn, vr, false});
    t.switches.push_back({0, fp, u[static_cast<size_t>(k)]});
    t.switches.push_back({0, fn, u[static_cast<size_t>(k) - 1]});
    t.switches.push_back({1, fp, u[static_cast<size_t>(k) + 1]});
    t.switches.push_back({1, fn, u[static_cast<size_t>(k)]});
  }
  return t;
}

ScTopology dickson(int n) {
  require(n >= 2, "dickson: ratio must be n:1 with n >= 2");
  ScTopology t;
  t.name = std::to_string(n) + ":1 Dickson";
  t.n = n;
  t.m = 1;

  // Cap k (k = 1..n-1) holds k*Vout = k/n * Vin (graded ratings). Bottom
  // plates alternate between gnd and Vout on opposite phases; the top-plate
  // chain ratchets charge from Vin down to Vout.
  std::vector<int> top(static_cast<size_t>(n));   // top[k], k = 1..n-1.
  std::vector<int> bot(static_cast<size_t>(n));
  auto phase_of = [](int k) { return k % 2; };    // Alternating clocking.
  for (int k = 1; k < n; ++k) {
    top[static_cast<size_t>(k)] = t.new_node();
    bot[static_cast<size_t>(k)] = t.new_node();
    t.caps.push_back({top[static_cast<size_t>(k)], bot[static_cast<size_t>(k)],
                      static_cast<double>(k) / n, false});
    // Bottom-plate drive: gnd while the cap delivers, Vout while it charges.
    t.switches.push_back({phase_of(k), bot[static_cast<size_t>(k)], kScGnd});
    t.switches.push_back({1 - phase_of(k), bot[static_cast<size_t>(k)], kScVout});
  }
  // Top chain: each link conducts in the phase where its two plates sit at
  // the same potential (adjacent caps clock in antiphase).
  for (int k = 1; k + 1 < n; ++k)
    t.switches.push_back({phase_of(k + 1), top[static_cast<size_t>(k)],
                          top[static_cast<size_t>(k) + 1]});
  t.switches.push_back({1 - phase_of(n - 1), kScVin, top[static_cast<size_t>(n) - 1]});
  t.switches.push_back({phase_of(1), top[1], kScVout});
  return t;
}

ScTopology make_topology(int n, int m, ScFamily family) {
  require(n >= 2 && m >= 1 && m < n, "make_topology: need n >= 2 and 1 <= m < n");
  switch (family) {
    case ScFamily::SeriesParallel:
      require(m == 1, "make_topology: series-parallel realizes only n:1 ratios");
      return series_parallel(n);
    case ScFamily::Ladder:
      return ladder(n, m);
    case ScFamily::Dickson:
      require(m == 1, "make_topology: Dickson realizes only n:1 ratios");
      return dickson(n);
    case ScFamily::Auto:
      return m == 1 ? series_parallel(n) : ladder(n, m);
  }
  throw InvalidParameter("make_topology: unknown family");
}

// ---------------------------------------------------------------------------
// Charge-flow solver
// ---------------------------------------------------------------------------

namespace {

// Column layout of the charge-flow unknown vector.
struct Layout {
  int n_caps = 0;
  int n_switches = 0;
  int q_in_col[2] = {-1, -1};
  int q_out_col[2] = {-1, -1};
  int n_cols = 0;

  int cap_col(int phase, int i) const { return phase * n_caps + i; }
  int sw_col(int i) const { return 2 * n_caps + i; }
};

// Is `node` electrically present in `phase` (incident to a capacitor or an
// active switch)?
bool node_present(const ScTopology& t, int phase, int node) {
  for (const ScCap& c : t.caps)
    if (c.pos == node || c.neg == node) return true;
  for (const ScSwitch& s : t.switches)
    if (s.phase == phase && (s.a == node || s.b == node)) return true;
  return false;
}

}  // namespace

ChargeVectors charge_vectors(const ScTopology& t) {
  require(!t.caps.empty(), "charge_vectors: topology has no capacitors");
  require(!t.switches.empty(), "charge_vectors: topology has no switches");

  Layout lay;
  lay.n_caps = static_cast<int>(t.caps.size());
  lay.n_switches = static_cast<int>(t.switches.size());
  int col = 2 * lay.n_caps + lay.n_switches;
  for (int p = 0; p < 2; ++p) {
    if (node_present(t, p, kScVin)) lay.q_in_col[p] = col++;
    if (node_present(t, p, kScVout)) lay.q_out_col[p] = col++;
  }
  lay.n_cols = col;
  if (lay.q_out_col[0] < 0 && lay.q_out_col[1] < 0)
    throw StructuralError("charge_vectors: output node is not connected in either phase");

  // Rows: KCL per present non-ground node per phase, capacitor balance, and
  // the unit-output normalization.
  std::vector<std::vector<std::pair<int, double>>> rows;
  std::vector<double> rhs;
  auto add_row = [&](std::vector<std::pair<int, double>> entries, double b) {
    rows.push_back(std::move(entries));
    rhs.push_back(b);
  };

  for (int p = 0; p < 2; ++p) {
    for (int node = 1; node < t.node_count; ++node) {
      if (!node_present(t, p, node)) continue;
      std::vector<std::pair<int, double>> entries;
      for (int i = 0; i < lay.n_caps; ++i) {
        const ScCap& c = t.caps[static_cast<size_t>(i)];
        if (c.pos == node) entries.emplace_back(lay.cap_col(p, i), 1.0);
        if (c.neg == node) entries.emplace_back(lay.cap_col(p, i), -1.0);
      }
      for (int i = 0; i < lay.n_switches; ++i) {
        const ScSwitch& s = t.switches[static_cast<size_t>(i)];
        if (s.phase != p) continue;
        if (s.a == node) entries.emplace_back(lay.sw_col(i), 1.0);
        if (s.b == node) entries.emplace_back(lay.sw_col(i), -1.0);
      }
      if (node == kScVin && lay.q_in_col[p] >= 0) entries.emplace_back(lay.q_in_col[p], -1.0);
      if (node == kScVout && lay.q_out_col[p] >= 0) entries.emplace_back(lay.q_out_col[p], 1.0);
      if (!entries.empty()) add_row(std::move(entries), 0.0);
    }
  }
  for (int i = 0; i < lay.n_caps; ++i)
    add_row({{lay.cap_col(0, i), 1.0}, {lay.cap_col(1, i), 1.0}}, 0.0);
  {
    std::vector<std::pair<int, double>> entries;
    for (int p = 0; p < 2; ++p)
      if (lay.q_out_col[p] >= 0) entries.emplace_back(lay.q_out_col[p], 1.0);
    add_row(std::move(entries), 1.0);
  }

  Matrix<double> a(rows.size(), static_cast<size_t>(lay.n_cols));
  for (size_t r = 0; r < rows.size(); ++r)
    for (const auto& [c, v] : rows[r]) a(r, static_cast<size_t>(c)) += v;

  const std::vector<double> x = solve_min_norm(a, rhs);
  const double resid = residual_norm(a, x, rhs);
  if (resid > 1e-6)
    throw StructuralError("charge_vectors: inconsistent charge-flow system (residual " +
                          std::to_string(resid) + ") — topology cannot operate");

  ChargeVectors cv;
  cv.a_cap.resize(static_cast<size_t>(lay.n_caps));
  for (int i = 0; i < lay.n_caps; ++i)
    cv.a_cap[static_cast<size_t>(i)] =
        std::max(std::fabs(x[static_cast<size_t>(lay.cap_col(0, i))]),
                 std::fabs(x[static_cast<size_t>(lay.cap_col(1, i))]));
  cv.a_switch.resize(static_cast<size_t>(lay.n_switches));
  for (int i = 0; i < lay.n_switches; ++i)
    cv.a_switch[static_cast<size_t>(i)] = std::fabs(x[static_cast<size_t>(lay.sw_col(i))]);
  for (int p = 0; p < 2; ++p)
    if (lay.q_in_col[p] >= 0) cv.q_in += x[static_cast<size_t>(lay.q_in_col[p])];
  if (lay.q_out_col[0] >= 0) cv.q_out_phase_a = x[static_cast<size_t>(lay.q_out_col[0])];
  return cv;
}

// ---------------------------------------------------------------------------
// Memoized static analysis
// ---------------------------------------------------------------------------

namespace {

const ScStaticAnalysis& sc_static_analysis_cached(int n, int m, ScFamily family) {
  using Key = std::tuple<int, int, int>;
  // unique_ptr values keep entries at stable addresses; the map only grows.
  static std::mutex mutex;
  static std::map<Key, std::unique_ptr<const ScStaticAnalysis>> cache;

  const Key key{n, m, static_cast<int>(family)};
  {
    std::lock_guard<std::mutex> lock(mutex);
    const auto it = cache.find(key);
    if (it != cache.end()) return *it->second;
  }
  // Derive outside the lock: the solve is the expensive part, and deriving
  // the same triple twice on a race is harmless (first insert wins).
  auto fresh = std::make_unique<ScStaticAnalysis>();
  fresh->topo = make_topology(n, m, family);
  fresh->cv = charge_vectors(fresh->topo);
  fresh->stress = switch_stress_ratios(fresh->topo);
  std::lock_guard<std::mutex> lock(mutex);
  const auto [it, inserted] = cache.try_emplace(key, std::move(fresh));
  (void)inserted;
  return *it->second;
}

}  // namespace

const ScStaticAnalysis& sc_static_analysis(int n, int m, ScFamily family) {
  if (family == ScFamily::Auto) family = m == 1 ? ScFamily::SeriesParallel : ScFamily::Ladder;
  // Injection point for the fault harness. The probe fires per *call* (not
  // per derivation) so injected behaviour is independent of cache warmth. In
  // EmitNan mode the NaN is folded into a thread-local copy, never into the
  // shared cache entry.
  const double injected = fault::inject("sc_static_analysis");
  const ScStaticAnalysis& clean = sc_static_analysis_cached(n, m, family);
  if (std::isnan(injected)) {
    thread_local ScStaticAnalysis poisoned;
    poisoned = clean;
    for (double& a : poisoned.cv.a_cap) a += injected;
    for (double& a : poisoned.cv.a_switch) a += injected;
    poisoned.cv.q_in += injected;
    return poisoned;
  }
  return clean;
}

// ---------------------------------------------------------------------------
// Ideal node ratios & switch stress
// ---------------------------------------------------------------------------

NodeRatios ideal_node_ratios(const ScTopology& t) {
  NodeRatios out;
  for (int p = 0; p < 2; ++p) {
    std::vector<std::vector<std::pair<int, double>>> rows;
    std::vector<double> rhs;
    auto add_row = [&](std::vector<std::pair<int, double>> entries, double b) {
      rows.push_back(std::move(entries));
      rhs.push_back(b);
    };
    add_row({{kScGnd, 1.0}}, 0.0);
    add_row({{kScVin, 1.0}}, 1.0);
    add_row({{kScVout, 1.0}}, t.ideal_ratio());
    for (const ScSwitch& s : t.switches)
      if (s.phase == p) add_row({{s.a, 1.0}, {s.b, -1.0}}, 0.0);
    for (const ScCap& c : t.caps) add_row({{c.pos, 1.0}, {c.neg, -1.0}}, c.ideal_v_ratio);

    Matrix<double> a(rows.size(), static_cast<size_t>(t.node_count));
    for (size_t r = 0; r < rows.size(); ++r)
      for (const auto& [cix, v] : rows[r]) a(r, static_cast<size_t>(cix)) += v;
    const std::vector<double> x = solve_min_norm(a, rhs);
    const double resid = residual_norm(a, x, rhs);
    if (resid > 1e-6)
      throw StructuralError("ideal_node_ratios: inconsistent topology (residual " +
                            std::to_string(resid) + ")");
    (p == 0 ? out.phase_a : out.phase_b) = x;
  }
  return out;
}

std::vector<double> switch_stress_ratios(const ScTopology& t) {
  const NodeRatios nr = ideal_node_ratios(t);
  std::vector<double> stress;
  stress.reserve(t.switches.size());
  for (const ScSwitch& s : t.switches) {
    // Blocking voltage appears in the phase the switch is OFF.
    const std::vector<double>& r = s.phase == 0 ? nr.phase_b : nr.phase_a;
    stress.push_back(std::fabs(r[static_cast<size_t>(s.a)] - r[static_cast<size_t>(s.b)]));
  }
  return stress;
}

// ---------------------------------------------------------------------------
// Netlist emission
// ---------------------------------------------------------------------------

namespace {

// Shared netlist emission; vref_v < 0 selects open-loop (plain time-clocked)
// switches, vref_v >= 0 gates every switch with a vout < vref comparator.
ScNetlistResult build_netlist_impl(spice::Circuit& c, const ScTopology& t,
                                   const ChargeVectors& cv, const spice::Waveform& vin_wave,
                                   double vref_v, double vhyst_v, double c_fly_tot, double g_tot,
                                   double f_sw, double c_out, double duty) {
  const double vin_v = vin_wave(0.0);
  require(vin_v > 0.0, "build_sc_netlist: vin(0) must be positive");
  require(c_fly_tot > 0.0 && g_tot > 0.0, "build_sc_netlist: c and g must be positive");
  require(f_sw > 0.0, "build_sc_netlist: f_sw must be positive");
  require(cv.a_cap.size() == t.caps.size() && cv.a_switch.size() == t.switches.size(),
          "build_sc_netlist: charge vectors do not match topology");

  // Map topology node ids onto circuit nodes.
  std::vector<spice::NodeId> node(static_cast<size_t>(t.node_count));
  node[kScGnd] = spice::kGround;
  node[kScVin] = c.node("sc_vin");
  node[kScVout] = c.node("sc_vout");
  for (int i = 3; i < t.node_count; ++i)
    node[static_cast<size_t>(i)] = c.node("sc_n" + std::to_string(i));

  c.add_vsource("sc_vsrc", node[kScVin], spice::kGround, vin_wave);

  // Capacitors sized proportionally to |a_c| (optimal SSL allocation), with a
  // small floor so zero-multiplier caps still exist physically.
  const double sum_ac = cv.sum_ac();
  require(sum_ac > 0.0, "build_sc_netlist: degenerate charge vectors");
  const double floor_weight = 0.02 * sum_ac / static_cast<double>(t.caps.size());
  double weight_total = 0.0;
  std::vector<double> weights(t.caps.size());
  for (size_t i = 0; i < t.caps.size(); ++i) {
    weights[i] = std::max(cv.a_cap[i], floor_weight);
    weight_total += weights[i];
  }
  for (size_t i = 0; i < t.caps.size(); ++i) {
    const ScCap& cap = t.caps[i];
    const double c_i = c_fly_tot * weights[i] / weight_total;
    c.add_capacitor_ic("sc_c" + std::to_string(i), node[static_cast<size_t>(cap.pos)],
                       node[static_cast<size_t>(cap.neg)], c_i, cap.ideal_v_ratio * vin_v);
  }

  // Switches sized proportionally to |a_r| (optimal FSL allocation).
  const double sum_ar = cv.sum_ar();
  const double sw_floor = 0.02 * sum_ar / static_cast<double>(t.switches.size());
  double g_weight_total = 0.0;
  std::vector<double> g_weights(t.switches.size());
  for (size_t i = 0; i < t.switches.size(); ++i) {
    g_weights[i] = std::max(cv.a_switch[i], sw_floor);
    g_weight_total += g_weights[i];
  }
  const spice::PhaseClock clk(f_sw, 2, duty);
  for (size_t i = 0; i < t.switches.size(); ++i) {
    const ScSwitch& s = t.switches[i];
    const double g_i = g_tot * g_weights[i] / g_weight_total;
    if (vref_v < 0.0) {
      c.add_switch("sc_s" + std::to_string(i), node[static_cast<size_t>(s.a)],
                   node[static_cast<size_t>(s.b)], 1.0 / g_i, 1e9, clk.control(s.phase),
                   clk.edge_fn(s.phase));
    } else {
      c.add_gated_switch("sc_s" + std::to_string(i), node[static_cast<size_t>(s.a)],
                         node[static_cast<size_t>(s.b)], 1.0 / g_i, 1e9, clk.control(s.phase),
                         clk.edge_fn(s.phase), node[kScVout], spice::kGround, vref_v, vhyst_v);
    }
  }

  if (c_out > 0.0) {
    const double v0 = vref_v < 0.0 ? t.ideal_ratio() * vin_v
                                   : std::min(t.ideal_ratio() * vin_v, vref_v);
    c.add_capacitor_ic("sc_cout", node[kScVout], spice::kGround, c_out, v0);
  }
  return {node[kScVin], node[kScVout]};
}

}  // namespace

ScNetlistResult build_sc_netlist(spice::Circuit& c, const ScTopology& t, const ChargeVectors& cv,
                                 double vin_v, double c_fly_tot, double g_tot, double f_sw,
                                 double c_out, double duty) {
  return build_netlist_impl(c, t, cv, spice::Waveform::dc(vin_v), -1.0, 0.0, c_fly_tot, g_tot,
                            f_sw, c_out, duty);
}

ScNetlistResult build_sc_netlist_regulated(spice::Circuit& c, const ScTopology& t,
                                           const ChargeVectors& cv, spice::Waveform vin_wave,
                                           double vref_v, double vhyst_v, double c_fly_tot,
                                           double g_tot, double f_sw, double c_out, double duty) {
  require(vref_v > 0.0, "build_sc_netlist_regulated: vref must be positive");
  require(vhyst_v >= 0.0, "build_sc_netlist_regulated: hysteresis must be non-negative");
  return build_netlist_impl(c, t, cv, std::move(vin_wave), vref_v, vhyst_v, c_fly_tot, g_tot,
                            f_sw, c_out, duty);
}

}  // namespace ivory::core
