#include "core/report_json.hpp"

#include <algorithm>

#include "tech/tech.hpp"

namespace ivory {

using json::Value;

Value to_json(const Diagnostics& d) {
  Value::Object o;
  o.emplace_back("code", error_code_name(d.code));
  o.emplace_back("site", d.site);
  o.emplace_back("candidate", d.candidate);
  o.emplace_back("detail", d.detail);
  return Value(std::move(o));
}

Value to_json(const SweepReport& r) {
  Value::Array skips;
  skips.reserve(r.skips.size());
  for (const Diagnostics& d : r.skips) skips.push_back(to_json(d));
  Value::Object o;
  o.emplace_back("n_evaluated", static_cast<double>(r.n_evaluated));
  o.emplace_back("n_survived", static_cast<double>(r.n_survived));
  o.emplace_back("n_skipped", static_cast<double>(r.n_skipped()));
  o.emplace_back("skips", Value(std::move(skips)));
  return Value(std::move(o));
}

namespace core {

const char* sc_family_name(ScFamily f) {
  switch (f) {
    case ScFamily::Auto: return "auto";
    case ScFamily::SeriesParallel: return "series-parallel";
    case ScFamily::Ladder: return "ladder";
    case ScFamily::Dickson: return "dickson";
  }
  return "?";
}

Value to_json(const ScDesign& d) {
  Value::Object o;
  o.emplace_back("node", tech::node_name(d.node));
  o.emplace_back("cap", tech::cap_kind_name(d.cap_kind));
  o.emplace_back("n", d.n);
  o.emplace_back("m", d.m);
  o.emplace_back("family", sc_family_name(d.family));
  o.emplace_back("cfly", d.c_fly_f);
  o.emplace_back("cout", d.c_out_f);
  o.emplace_back("gtot", d.g_tot_s);
  o.emplace_back("fsw", d.f_sw_hz);
  o.emplace_back("interleave", d.n_interleave);
  o.emplace_back("duty", d.duty);
  return Value(std::move(o));
}

Value to_json(const BuckDesign& d) {
  Value::Object o;
  o.emplace_back("node", tech::node_name(d.node));
  o.emplace_back("cap", tech::cap_kind_name(d.cap_kind));
  o.emplace_back("inductor", tech::inductor_kind_name(d.inductor));
  o.emplace_back("l", d.l_per_phase_h);
  o.emplace_back("fsw", d.f_sw_hz);
  o.emplace_back("phases", d.n_phases);
  o.emplace_back("whs", d.w_high_m);
  o.emplace_back("wls", d.w_low_m);
  o.emplace_back("cout", d.c_out_f);
  return Value(std::move(o));
}

Value to_json(const LdoDesign& d) {
  Value::Object o;
  o.emplace_back("node", tech::node_name(d.node));
  o.emplace_back("cap", tech::cap_kind_name(d.cap_kind));
  o.emplace_back("wpass", d.w_pass_m);
  o.emplace_back("bits", d.n_bits);
  o.emplace_back("fclk", d.f_clk_hz);
  o.emplace_back("cout", d.c_out_f);
  o.emplace_back("iq", d.i_quiescent_a);
  return Value(std::move(o));
}

Value to_json(const DldoDesign& d) {
  Value::Object o;
  o.emplace_back("node", tech::node_name(d.node));
  o.emplace_back("cap", tech::cap_kind_name(d.cap_kind));
  o.emplace_back("wpass", d.w_pass_m);
  o.emplace_back("bits", d.n_bits);
  o.emplace_back("fclk", d.f_clk_hz);
  o.emplace_back("ncomp", d.n_comparators);
  o.emplace_back("cout", d.c_out_f);
  o.emplace_back("iq", d.i_quiescent_a);
  return Value(std::move(o));
}

Value to_json(const ScAnalysis& a) {
  Value::Object o;
  o.emplace_back("vin_v", a.vin_v);
  o.emplace_back("i_load_a", a.i_load_a);
  o.emplace_back("vout_ideal_v", a.vout_ideal_v);
  o.emplace_back("vout_v", a.vout_v);
  o.emplace_back("rssl_ohm", a.rssl_ohm);
  o.emplace_back("rfsl_ohm", a.rfsl_ohm);
  o.emplace_back("rout_ohm", a.rout_ohm);
  o.emplace_back("p_out_w", a.p_out_w);
  o.emplace_back("p_conduction_w", a.p_conduction_w);
  o.emplace_back("p_gate_w", a.p_gate_w);
  o.emplace_back("p_bottom_plate_w", a.p_bottom_plate_w);
  o.emplace_back("p_leakage_w", a.p_leakage_w);
  o.emplace_back("p_peripheral_w", a.p_peripheral_w);
  o.emplace_back("p_in_w", a.p_in_w);
  o.emplace_back("efficiency", a.efficiency);
  o.emplace_back("ripple_pp_v", a.ripple_pp_v);
  o.emplace_back("area_caps_m2", a.area_caps_m2);
  o.emplace_back("area_switches_m2", a.area_switches_m2);
  o.emplace_back("area_peripheral_m2", a.area_peripheral_m2);
  o.emplace_back("area_m2", a.area_m2);
  o.emplace_back("switch_width_m", a.switch_width_m);
  return Value(std::move(o));
}

Value to_json(const ScRegulated& r) {
  Value::Object o;
  o.emplace_back("feasible", r.feasible);
  o.emplace_back("f_sw_used_hz", r.f_sw_used_hz);
  o.emplace_back("analysis", to_json(r.analysis));
  return Value(std::move(o));
}

Value to_json(const BuckAnalysis& a) {
  Value::Object o;
  o.emplace_back("vin_v", a.vin_v);
  o.emplace_back("vout_v", a.vout_v);
  o.emplace_back("i_load_a", a.i_load_a);
  o.emplace_back("duty", a.duty);
  o.emplace_back("l_eff_h", a.l_eff_h);
  o.emplace_back("i_ripple_phase_a", a.i_ripple_phase_a);
  o.emplace_back("i_ripple_out_a", a.i_ripple_out_a);
  o.emplace_back("p_out_w", a.p_out_w);
  o.emplace_back("p_conduction_w", a.p_conduction_w);
  o.emplace_back("p_gate_w", a.p_gate_w);
  o.emplace_back("p_overlap_w", a.p_overlap_w);
  o.emplace_back("p_coss_w", a.p_coss_w);
  o.emplace_back("p_deadtime_w", a.p_deadtime_w);
  o.emplace_back("p_peripheral_w", a.p_peripheral_w);
  o.emplace_back("p_in_w", a.p_in_w);
  o.emplace_back("efficiency", a.efficiency);
  o.emplace_back("ripple_pp_v", a.ripple_pp_v);
  o.emplace_back("area_die_m2", a.area_die_m2);
  o.emplace_back("area_offdie_m2", a.area_offdie_m2);
  o.emplace_back("area_m2", a.area_m2);
  return Value(std::move(o));
}

Value to_json(const LdoAnalysis& a) {
  Value::Object o;
  o.emplace_back("vin_v", a.vin_v);
  o.emplace_back("vout_v", a.vout_v);
  o.emplace_back("i_load_a", a.i_load_a);
  o.emplace_back("dropout_v", a.dropout_v);
  o.emplace_back("current_efficiency", a.current_efficiency);
  o.emplace_back("efficiency", a.efficiency);
  o.emplace_back("p_out_w", a.p_out_w);
  o.emplace_back("p_pass_w", a.p_pass_w);
  o.emplace_back("p_quiescent_w", a.p_quiescent_w);
  o.emplace_back("p_peripheral_w", a.p_peripheral_w);
  o.emplace_back("p_in_w", a.p_in_w);
  o.emplace_back("ripple_pp_v", a.ripple_pp_v);
  o.emplace_back("area_m2", a.area_m2);
  return Value(std::move(o));
}

Value to_json(const DldoAnalysis& a) {
  Value::Object o;
  o.emplace_back("vin_v", a.vin_v);
  o.emplace_back("vout_v", a.vout_v);
  o.emplace_back("i_load_a", a.i_load_a);
  o.emplace_back("dropout_v", a.dropout_v);
  o.emplace_back("i_lsb_a", a.i_lsb_a);
  o.emplace_back("current_efficiency", a.current_efficiency);
  o.emplace_back("efficiency", a.efficiency);
  o.emplace_back("p_out_w", a.p_out_w);
  o.emplace_back("p_pass_w", a.p_pass_w);
  o.emplace_back("p_quiescent_w", a.p_quiescent_w);
  o.emplace_back("p_peripheral_w", a.p_peripheral_w);
  o.emplace_back("p_in_w", a.p_in_w);
  o.emplace_back("ripple_pp_v", a.ripple_pp_v);
  o.emplace_back("t_response_s", a.t_response_s);
  o.emplace_back("area_m2", a.area_m2);
  return Value(std::move(o));
}

Value to_json(const DseResult& r) {
  Value::Object o;
  o.emplace_back("topology", topology_name(r.topology));
  o.emplace_back("label", r.label);
  o.emplace_back("n_distributed", r.n_distributed);
  o.emplace_back("feasible", r.feasible);
  o.emplace_back("efficiency", r.efficiency);
  o.emplace_back("ripple_pp_v", r.ripple_pp_v);
  o.emplace_back("f_sw_hz", r.f_sw_hz);
  o.emplace_back("area_m2", r.area_m2);
  o.emplace_back("n_interleave", r.n_interleave);
  switch (r.topology) {
    case IvrTopology::SwitchedCapacitor: o.emplace_back("design", to_json(r.sc)); break;
    case IvrTopology::Buck: o.emplace_back("design", to_json(r.buck)); break;
    case IvrTopology::LinearRegulator: o.emplace_back("design", to_json(r.ldo)); break;
    case IvrTopology::DigitalLdo: o.emplace_back("design", to_json(r.dldo)); break;
  }
  return Value(std::move(o));
}

Value to_json(const ParetoPoint& p) {
  Value::Object o;
  o.emplace_back("index", static_cast<std::uint64_t>(p.index));
  o.emplace_back("ivr_load_frac", p.ivr_load_frac);
  Value::Object s;
  s.emplace_back("efficiency", p.screen.efficiency);
  s.emplace_back("area_m2", p.screen.area_m2);
  s.emplace_back("ripple_pp_v", p.screen.ripple_pp_v);
  o.emplace_back("screen", Value(std::move(s)));
  o.emplace_back("design", to_json(p.design));
  o.emplace_back("simulated", p.simulated);
  if (p.simulated) {
    o.emplace_back("droop_pp_v", p.droop_pp_v);
    o.emplace_back("v_mean_v", p.v_mean_v);
  }
  return Value(std::move(o));
}

Value to_json(const ParetoFront& f) {
  Value::Array pts;
  pts.reserve(f.points.size());
  for (const ParetoPoint& p : f.points) pts.push_back(to_json(p));
  Value::Object stats;
  stats.emplace_back("n_screened", f.stats.n_screened);
  stats.emplace_back("n_feasible", f.stats.n_feasible);
  stats.emplace_back("n_blocks", f.stats.n_blocks);
  stats.emplace_back("frontier_size", f.stats.frontier_size);
  Value::Object o;
  o.emplace_back("points", Value(std::move(pts)));
  o.emplace_back("stats", Value(std::move(stats)));
  return Value(std::move(o));
}

Value to_json(const TwoStageResult& r) {
  Value::Object o;
  o.emplace_back("feasible", r.feasible);
  o.emplace_back("v_mid_v", r.v_mid_v);
  o.emplace_back("area_frac_stage1", r.area_frac_stage1);
  o.emplace_back("efficiency", r.efficiency);
  o.emplace_back("stage1", to_json(r.stage1));
  o.emplace_back("stage2", to_json(r.stage2));
  return Value(std::move(o));
}

Value to_json(const PdsBreakdown& b) {
  Value::Object o;
  o.emplace_back("v_core_actual_v", b.v_core_actual_v);
  o.emplace_back("p_core_useful_w", b.p_core_useful_w);
  o.emplace_back("p_guardband_w", b.p_guardband_w);
  o.emplace_back("p_grid_ir_w", b.p_grid_ir_w);
  o.emplace_back("p_pdn_ir_w", b.p_pdn_ir_w);
  o.emplace_back("p_ivr_loss_w", b.p_ivr_loss_w);
  o.emplace_back("p_vrm_loss_w", b.p_vrm_loss_w);
  o.emplace_back("p_total_w", b.p_total_w);
  o.emplace_back("efficiency", b.efficiency);
  return Value(std::move(o));
}

Value to_json(const spice::TranResult& r, const std::vector<std::string>& node_names,
              bool include_waveforms) {
  require(node_names.size() == r.nodes.size(),
          "to_json(TranResult): one name per recorded node required");
  Value::Object o;
  o.emplace_back("steps_taken", static_cast<std::uint64_t>(r.steps_taken));
  o.emplace_back("lu_factorizations", static_cast<std::uint64_t>(r.lu_factorizations));
  o.emplace_back("lu_cache_hits", static_cast<std::uint64_t>(r.lu_cache_hits));
  o.emplace_back("lu_cache_evictions", static_cast<std::uint64_t>(r.lu_cache_evictions));
  o.emplace_back("max_resident_factorizations",
                 static_cast<std::uint64_t>(r.max_resident_factorizations));
  o.emplace_back("kernel", r.kernel);
  o.emplace_back("symbolic_analyses", static_cast<std::uint64_t>(r.symbolic_analyses));
  o.emplace_back("factor_nnz", static_cast<std::uint64_t>(r.factor_nnz));
  o.emplace_back("n_points", static_cast<std::uint64_t>(r.time.size()));

  Value::Array nodes;
  nodes.reserve(r.nodes.size());
  for (std::size_t i = 0; i < r.nodes.size(); ++i) {
    const std::vector<double>& v = r.voltages[i];
    double lo = v.empty() ? 0.0 : v.front(), hi = lo, sum = 0.0;
    for (double s : v) {
      lo = std::min(lo, s);
      hi = std::max(hi, s);
      sum += s;
    }
    Value::Object n;
    n.emplace_back("node", node_names[i]);
    n.emplace_back("final_v", v.empty() ? 0.0 : v.back());
    n.emplace_back("mean_v", v.empty() ? 0.0 : sum / static_cast<double>(v.size()));
    n.emplace_back("min_v", lo);
    n.emplace_back("max_v", hi);
    if (include_waveforms) {
      Value::Array wave;
      wave.reserve(v.size());
      for (double s : v) wave.push_back(s);
      n.emplace_back("v", Value(std::move(wave)));
    }
    nodes.push_back(Value(std::move(n)));
  }
  o.emplace_back("nodes", Value(std::move(nodes)));
  if (include_waveforms) {
    Value::Array time;
    time.reserve(r.time.size());
    for (double t : r.time) time.push_back(t);
    o.emplace_back("time_s", Value(std::move(time)));
  }
  return Value(std::move(o));
}

}  // namespace core
}  // namespace ivory
