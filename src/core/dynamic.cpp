#include "core/dynamic.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/units.hpp"

namespace ivory::core {

namespace {

void check_trace(const std::vector<double>& i_load, double dt) {
  require(i_load.size() >= 2, "dynamic model: need at least two load samples");
  require(dt > 0.0, "dynamic model: dt must be positive");
}

// Resamples a waveform known at times grid[j] (piecewise linear) onto a
// uniform dt grid of n samples.
std::vector<double> resample(const std::vector<double>& times, const std::vector<double>& values,
                             double dt, std::size_t n) {
  std::vector<double> out(n);
  std::size_t j = 0;
  for (std::size_t k = 0; k < n; ++k) {
    const double t = static_cast<double>(k) * dt;
    while (j + 1 < times.size() && times[j + 1] <= t) ++j;
    if (j + 1 >= times.size()) {
      out[k] = values.back();
      continue;
    }
    const double t0 = times[j], t1 = times[j + 1];
    const double a = t1 > t0 ? (t - t0) / (t1 - t0) : 0.0;
    out[k] = values[j] * (1.0 - std::clamp(a, 0.0, 1.0)) + values[j + 1] * std::clamp(a, 0.0, 1.0);
  }
  return out;
}

}  // namespace

DynWaveform sc_cycle_response(const ScDesign& d, double vin_v, double vref_v,
                              const std::vector<double>& i_load, double dt_s,
                              ScControl control) {
  check_trace(i_load, dt_s);
  require(vin_v > 0.0, "sc_cycle_response: vin must be positive");
  return sc_cycle_response_traces(d, std::vector<double>(i_load.size(), vin_v),
                                  std::vector<double>(i_load.size(), vref_v), i_load, dt_s,
                                  control);
}

DynWaveform sc_cycle_response_traces(const ScDesign& d, const std::vector<double>& vin_trace,
                                     const std::vector<double>& vref_trace,
                                     const std::vector<double>& i_load, double dt_s,
                                     ScControl control) {
  check_trace(i_load, dt_s);
  // The cycle loop below indexes all three traces with one shared index; a
  // length mismatch would read out of bounds, so reject it up front with the
  // offending sizes spelled out.
  require(vin_trace.size() == i_load.size() && vref_trace.size() == i_load.size(),
          "sc_cycle_response_traces: vin/vref/load traces must share length (got vin " +
              std::to_string(vin_trace.size()) + ", vref " + std::to_string(vref_trace.size()) +
              ", load " + std::to_string(i_load.size()) + ")");
  for (double v : vin_trace)
    require(v > 0.0, "sc_cycle_response_traces: vin must stay positive");
  const double vin_v = vin_trace.front();
  const double vref_v = vref_trace.front();

  // Custom topologies are derived per call; built-in (n, m, family) triples
  // come from the process-wide memo cache.
  ScStaticAnalysis local;
  const ScStaticAnalysis* st;
  if (d.custom_topology) {
    local.topo = *d.custom_topology;
    local.cv = charge_vectors(local.topo);
    st = &local;
  } else {
    st = &sc_static_analysis(d.n, d.m, d.family);
  }
  const ScTopology& topo = st->topo;
  const ChargeVectors& cv = st->cv;
  const double sum_ac = cv.sum_ac();
  const double sum_ar = cv.sum_ar();

  // Equivalent-circuit parameters matched to the static impedances:
  // slow limit  R(T -> inf) = 1/(f Ceq)        => Ceq = C_tot / (sum a_c)^2
  // fast limit  R(T -> 0)   = 2 Req            => Req = R_FSL / 2.
  const double c_eq = d.c_fly_f / (sum_ac * sum_ac);
  const double r_fsl = sum_ar * sum_ar / (d.g_tot_s * d.duty);
  const double r_eq = 0.5 * r_fsl;
  const double ratio = topo.ideal_ratio();
  const double c_o = sc_output_hf_cap(d);

  const double t_full = 1.0 / d.f_sw_hz;
  const int n_il = d.n_interleave;
  const double t_sub = t_full / static_cast<double>(n_il);
  // Charge-transfer completeness per slice: a slice's own R*C product is
  // invariant under interleaving (R x N, C / N).
  const double kx = 1.0 - std::exp(-t_full / (2.0 * r_eq * c_eq));
  const double c_eq_sub = c_eq / static_cast<double>(n_il);

  const double t_end = static_cast<double>(i_load.size()) * dt_s;
  const std::size_t n_cycles = static_cast<std::size_t>(t_end / t_sub) + 1;
  const WindowMean load_mean(i_load, dt_s);

  std::vector<double> times, values;
  times.reserve(n_cycles + 1);
  values.reserve(n_cycles + 1);
  double v = std::min(ratio * vin_v, vref_v > 0.0 ? vref_v : ratio * vin_v);
  v += fault::inject("cycle_model");
  times.push_back(0.0);
  values.push_back(v);

  for (std::size_t k = 0; k < n_cycles; ++k) {
    const double t0 = static_cast<double>(k) * t_sub;
    const std::size_t idx = std::min(load_mean.index_of(t0), i_load.size() - 1);
    const double vin_k = vin_trace[idx];
    const double vref_k = vref_trace[idx];
    const double i_out = load_mean.over_cycle(k, t_sub);
    const bool fire = control == ScControl::FreeRunning || v < vref_k;
    // Paper eq. (2), evaluated semi-implicitly: the transferred charge is
    // computed against the end-of-cycle voltage, which keeps the exact SSL
    // steady state I*T = (n*Vin - V)*Ceq*kx while making the discrete map
    // unconditionally stable (the explicit form diverges when the fly
    // capacitance dwarfs the output capacitance, Ceq*kx > 2*Co).
    const double a = c_eq_sub * kx;
    const double dq =
        fire ? a * (ratio * vin_k - v + i_out * t_sub / c_o) / (1.0 + a / c_o) : 0.0;
    v += (-i_out * t_sub + dq) / c_o;
    times.push_back(t0 + t_sub);
    values.push_back(v);
  }

  DynWaveform out;
  out.dt_s = dt_s;
  out.v = resample(times, values, dt_s, i_load.size());
  check_finite(out.v, "sc_cycle_response_traces: output waveform");
  return out;
}

DynWaveform buck_cycle_response(const BuckDesign& d, double vin_v, double vref_v,
                                const std::vector<double>& i_load, double dt_s) {
  check_trace(i_load, dt_s);
  require(vin_v > 0.0 && vref_v > 0.0 && vref_v < vin_v,
          "buck_cycle_response: need 0 < vref < vin");

  const tech::InductorTech& ind = tech::inductor_tech(d.inductor);
  // N interleaved phases fold into one equivalent converter with L/N.
  const double l_eq = ind.inductance_at(d.l_per_phase_h, d.f_sw_hz) /
                      static_cast<double>(d.n_phases);
  const double r_s = ind.dcr(d.l_per_phase_h) / static_cast<double>(d.n_phases);
  const double t = 1.0 / d.f_sw_hz;

  // Conservative PI voltage-mode gains referred to duty.
  const double kp = 0.2 / vin_v;
  const double ki = 0.02 / vin_v;

  const double t_end = static_cast<double>(i_load.size()) * dt_s;
  const std::size_t n_cycles = static_cast<std::size_t>(t_end / t) + 1;
  const WindowMean load_mean(i_load, dt_s);

  std::vector<double> times, values;
  times.reserve(n_cycles + 1);
  double v = vref_v + fault::inject("cycle_model");
  double i_l = load_mean.over_cycle(0, t);
  double integ = 0.0;
  times.push_back(0.0);
  values.push_back(v);

  for (std::size_t k = 0; k < n_cycles; ++k) {
    const double t0 = static_cast<double>(k) * t;
    const double i_out = load_mean.over_cycle(k, t);
    const double err = vref_v - v;
    integ += err;
    const double duty = std::clamp(vref_v / vin_v + kp * err + ki * integ, 0.0, 1.0);
    // Semi-implicit averaged CCM update: current first, then voltage.
    i_l += t * (duty * vin_v - v - i_l * r_s) / l_eq;
    v += t * (i_l - i_out) / d.c_out_f;
    times.push_back(t0 + t);
    values.push_back(v);
  }

  DynWaveform out;
  out.dt_s = dt_s;
  out.v = resample(times, values, dt_s, i_load.size());
  check_finite(out.v, "buck_cycle_response: output waveform");
  return out;
}

DynWaveform ldo_cycle_response(const LdoDesign& d, double vin_v, double vref_v,
                               const std::vector<double>& i_load, double dt_s) {
  check_trace(i_load, dt_s);
  require(vin_v > 0.0 && vref_v > 0.0 && vref_v < vin_v,
          "ldo_cycle_response: need 0 < vref < vin");

  const tech::SwitchTech& core_dev = tech::switch_tech(d.node, tech::DeviceClass::Core);
  const tech::SwitchTech& dev = vin_v > core_dev.vmax_v
                                    ? tech::switch_tech(d.node, tech::DeviceClass::Io)
                                    : core_dev;
  const double g_full = 1.0 / dev.ron(d.w_pass_m);
  const double segments = std::pow(2.0, d.n_bits);
  const double t = 1.0 / d.f_clk_hz;

  const double t_end = static_cast<double>(i_load.size()) * dt_s;
  const std::size_t n_cycles = static_cast<std::size_t>(t_end / t) + 1;
  const WindowMean load_mean(i_load, dt_s);

  std::vector<double> times, values;
  double v = vref_v + fault::inject("cycle_model");
  // Start with the code that carries the initial load.
  const double i0 = load_mean.over_cycle(0, t);
  double code = std::clamp(i0 / ((vin_v - v) * g_full) * segments, 0.0, segments);
  times.push_back(0.0);
  values.push_back(v);

  for (std::size_t k = 0; k < n_cycles; ++k) {
    const double t0 = static_cast<double>(k) * t;
    const double i_out = load_mean.over_cycle(k, t);
    // Clocked bang-bang comparator steps the unary array one segment.
    code = std::clamp(code + (v < vref_v ? 1.0 : -1.0), 0.0, segments);
    const double i_pass = (code / segments) * g_full * std::max(vin_v - v, 0.0);
    v += t * (i_pass - i_out) / d.c_out_f;
    times.push_back(t0 + t);
    values.push_back(v);
  }

  DynWaveform out;
  out.dt_s = dt_s;
  out.v = resample(times, values, dt_s, i_load.size());
  check_finite(out.v, "ldo_cycle_response: output waveform");
  return out;
}

DynWaveform dldo_cycle_response(const DldoDesign& d, double vin_v, double vref_v,
                                const std::vector<double>& i_load, double dt_s) {
  check_trace(i_load, dt_s);
  require(vin_v > 0.0 && vref_v > 0.0 && vref_v < vin_v,
          "dldo_cycle_response: need 0 < vref < vin");
  require(d.n_comparators >= 1, "dldo_cycle_response: need at least one comparator");

  const tech::SwitchTech& core_dev = tech::switch_tech(d.node, tech::DeviceClass::Core);
  const tech::SwitchTech& dev = vin_v > core_dev.vmax_v
                                    ? tech::switch_tech(d.node, tech::DeviceClass::Io)
                                    : core_dev;
  const double g_full = 1.0 / dev.ron(d.w_pass_m);
  const double segments = std::pow(2.0, d.n_bits);
  // Time-interleaved comparator slices fire round-robin: one code decision
  // every 1 / (n_comp * f_clk).
  const double t = 1.0 / (static_cast<double>(d.n_comparators) * d.f_clk_hz);

  const double t_end = static_cast<double>(i_load.size()) * dt_s;
  const std::size_t n_cycles = static_cast<std::size_t>(t_end / t) + 1;
  const WindowMean load_mean(i_load, dt_s);

  std::vector<double> times, values;
  double v = vref_v + fault::inject("cycle_model");
  // Start with the code that carries the initial load.
  const double i0 = load_mean.over_cycle(0, t);
  double code = std::clamp(i0 / ((vin_v - v) * g_full) * segments, 0.0, segments);
  times.push_back(0.0);
  values.push_back(v);

  for (std::size_t k = 0; k < n_cycles; ++k) {
    const double t0 = static_cast<double>(k) * t;
    const double i_out = load_mean.over_cycle(k, t);
    code = std::clamp(code + (v < vref_v ? 1.0 : -1.0), 0.0, segments);
    const double i_pass = (code / segments) * g_full * std::max(vin_v - v, 0.0);
    v += t * (i_pass - i_out) / d.c_out_f;
    times.push_back(t0 + t);
    values.push_back(v);
  }

  DynWaveform out;
  out.dt_s = dt_s;
  out.v = resample(times, values, dt_s, i_load.size());
  check_finite(out.v, "dldo_cycle_response: output waveform");
  return out;
}

std::vector<double> in_cycle_response(const std::vector<double>& i_load, double dt_s,
                                      double t_cycle_s, double c_hf_f) {
  check_trace(i_load, dt_s);
  require(t_cycle_s > 0.0, "in_cycle_response: cycle period must be positive");
  require(c_hf_f > 0.0, "in_cycle_response: capacitance must be positive");

  std::vector<double> out(i_load.size(), 0.0);
  const std::size_t per_cycle = std::max<std::size_t>(
      static_cast<std::size_t>(std::llround(t_cycle_s / dt_s)), 1);
  for (std::size_t start = 0; start < i_load.size(); start += per_cycle) {
    const std::size_t end = std::min(start + per_cycle, i_load.size());
    double mean = 0.0;
    for (std::size_t k = start; k < end; ++k) mean += i_load[k];
    mean /= static_cast<double>(end - start);
    double acc = 0.0;
    for (std::size_t k = start; k < end; ++k) {
      acc += (i_load[k] - mean) * dt_s;
      out[k] = -acc / c_hf_f;
    }
  }
  return out;
}

std::vector<double> grid_noise(const std::vector<double>& i_load, double dt_s, double r_ohm,
                               double l_h) {
  check_trace(i_load, dt_s);
  require(r_ohm >= 0.0 && l_h >= 0.0, "grid_noise: r and l must be non-negative");
  double mean = 0.0;
  for (double i : i_load) mean += i;
  mean /= static_cast<double>(i_load.size());

  std::vector<double> out(i_load.size(), 0.0);
  for (std::size_t k = 0; k < i_load.size(); ++k) {
    const double didt = k + 1 < i_load.size() ? (i_load[k + 1] - i_load[k]) / dt_s
                                              : (i_load[k] - i_load[k - 1]) / dt_s;
    out[k] = -r_ohm * (i_load[k] - mean) - l_h * didt;
  }
  return out;
}

namespace {

DynWaveform add_in_cycle(DynWaveform base, const std::vector<double>& i_load, double dt_s,
                         double t_cycle, double c_hf) {
  const std::vector<double> hf = in_cycle_response(i_load, dt_s, t_cycle, c_hf);
  for (std::size_t k = 0; k < base.v.size() && k < hf.size(); ++k) base.v[k] += hf[k];
  return base;
}

}  // namespace

DynWaveform sc_combined_response(const ScDesign& d, double vin_v, double vref_v,
                                 const std::vector<double>& i_load, double dt_s,
                                 ScControl control) {
  DynWaveform base = sc_cycle_response(d, vin_v, vref_v, i_load, dt_s, control);
  const double t_sub = 1.0 / (d.f_sw_hz * static_cast<double>(d.n_interleave));
  return add_in_cycle(std::move(base), i_load, dt_s, t_sub, sc_output_hf_cap(d));
}

DynWaveform buck_combined_response(const BuckDesign& d, double vin_v, double vref_v,
                                   const std::vector<double>& i_load, double dt_s) {
  DynWaveform base = buck_cycle_response(d, vin_v, vref_v, i_load, dt_s);
  const double t_sub = 1.0 / (d.f_sw_hz * static_cast<double>(d.n_phases));
  return add_in_cycle(std::move(base), i_load, dt_s, t_sub, d.c_out_f);
}

DynWaveform ldo_combined_response(const LdoDesign& d, double vin_v, double vref_v,
                                  const std::vector<double>& i_load, double dt_s) {
  DynWaveform base = ldo_cycle_response(d, vin_v, vref_v, i_load, dt_s);
  return add_in_cycle(std::move(base), i_load, dt_s, 1.0 / d.f_clk_hz, d.c_out_f);
}

DynWaveform dldo_combined_response(const DldoDesign& d, double vin_v, double vref_v,
                                   const std::vector<double>& i_load, double dt_s) {
  DynWaveform base = dldo_cycle_response(d, vin_v, vref_v, i_load, dt_s);
  const double t_dec = 1.0 / (static_cast<double>(d.n_comparators) * d.f_clk_hz);
  return add_in_cycle(std::move(base), i_load, dt_s, t_dec, d.c_out_f);
}

// ---------------------------------------------------------------------------
// Frequency-domain transfer (eqs. 3-5)
// ---------------------------------------------------------------------------

std::complex<double> NoiseTransfer::f_load(double f_hz) const {
  require(f_hz > 0.0, "NoiseTransfer: frequency must be positive");
  const std::complex<double> jw(0.0, 2.0 * pi * f_hz);
  return 1.0 / (1.0 + jw * r_out_ohm * c_hf_f);
}

std::complex<double> NoiseTransfer::f_zoh(double f_hz) const {
  require(f_hz > 0.0, "NoiseTransfer: frequency must be positive");
  require(f_sw_hz > 0.0, "NoiseTransfer: f_sw must be set");
  const double t = 1.0 / f_sw_hz;
  const std::complex<double> jwt(0.0, 2.0 * pi * f_hz * t);
  if (std::abs(jwt) < 1e-9) return {1.0, 0.0};
  return (1.0 - std::exp(-jwt)) / jwt;
}

std::complex<double> NoiseTransfer::rejection(double f_hz) const {
  const std::complex<double> fl = f_load(f_hz);
  const double delay = ctrl_delay_s > 0.0 ? ctrl_delay_s : 0.5 / f_sw_hz;
  const std::complex<double> fctl =
      ctrl_gain * std::exp(std::complex<double>(0.0, -2.0 * pi * f_hz * delay));
  // |F_sw| falls as 1/f above f_sw and nulls at multiples of f_sw: past the
  // switching frequency the loop contributes nothing and H -> F_L (eq. 5).
  return fl / (1.0 + fl * fctl * f_zoh(f_hz));
}

}  // namespace ivory::core
