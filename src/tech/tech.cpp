#include "tech/tech.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/error.hpp"

namespace ivory::tech {

namespace {

// Unit helpers local to the tables: the database is written in the units the
// literature uses, converted once here.
constexpr double ohm_um = 1e-6;     // ohm*um -> ohm*m
constexpr double ff_per_um = 1e-9;  // fF/um -> F/m
constexpr double na_per_um = 1e-3;  // nA/um -> A/m
constexpr double um_pitch = 1e-6;   // um^2 of area per um of width -> m
constexpr double nf_per_mm2 = 1e-3; // nF/mm^2 -> F/m^2
constexpr double nh_per_mm2 = 1e-3; // nH/mm^2 -> H/m^2

struct NodeRow {
  Node node;
  double nm;
  SwitchTech core;
  SwitchTech io;
};

// Core-device trends follow ITRS/PTM: Vdd scales 1.3 V -> 0.75 V, Ron*W
// improves ~3x over the range, Cg/W shrinks ~2.7x, leakage per width grows as
// oxides thin. IO (thick-oxide, 3.3 V tolerant) devices trade ~3.5x Ron*W and
// ~1.8x Cg/W for the voltage rating.
SwitchTech make_core(double vdd, double ron_w_ohmum, double cg_ff_um, double cd_ff_um,
                     double leak_na_um, double pitch_um) {
  // Terminal tolerance ~1.2x Vdd (standard overdrive rating headroom).
  return SwitchTech{vdd,
                    vdd * 1.2,
                    ron_w_ohmum * ohm_um,
                    cg_ff_um * ff_per_um,
                    cd_ff_um * ff_per_um,
                    leak_na_um * na_per_um,
                    pitch_um * um_pitch};
}

SwitchTech make_io(const SwitchTech& core) {
  SwitchTech io = core;
  io.vdd_nom_v = 3.3;
  io.vmax_v = 3.6;
  io.ron_w_ohm_m = core.ron_w_ohm_m * 3.5;
  io.cgate_per_w_f_m = core.cgate_per_w_f_m * 1.8;
  io.cdrain_per_w_f_m = core.cdrain_per_w_f_m * 1.6;
  io.ileak_per_w_a_m = core.ileak_per_w_a_m * 0.1;
  io.area_per_w_m = core.area_per_w_m * 2.5;
  return io;
}

const std::array<NodeRow, 8>& node_table() {
  static const std::array<NodeRow, 8> rows = [] {
    std::array<NodeRow, 8> t{};
    auto fill = [](Node n, double nm, double vdd, double ron, double cg, double cd, double leak,
                   double pitch) {
      NodeRow r;
      r.node = n;
      r.nm = nm;
      r.core = make_core(vdd, ron, cg, cd, leak, pitch);
      r.io = make_io(r.core);
      return r;
    };
    // Ron*W for power switches driven at full overdrive in deep triode;
    // the area pitch is the contacted-poly pitch of a dense power-FET
    // finger array (plus taps/guard), not a logic-cell pitch.
    t[0] = fill(Node::n130, 130.0, 1.30, 1040.0, 1.90, 1.10, 0.1, 0.60);
    t[1] = fill(Node::n90, 90.0, 1.20, 880.0, 1.60, 0.95, 0.3, 0.42);
    t[2] = fill(Node::n65, 65.0, 1.10, 760.0, 1.35, 0.80, 1.0, 0.30);
    t[3] = fill(Node::n45, 45.0, 1.00, 640.0, 1.15, 0.70, 2.0, 0.22);
    t[4] = fill(Node::n32, 32.0, 0.95, 560.0, 1.00, 0.60, 3.0, 0.18);
    t[5] = fill(Node::n22, 22.0, 0.90, 480.0, 0.85, 0.50, 4.0, 0.14);
    t[6] = fill(Node::n14, 14.0, 0.80, 400.0, 0.75, 0.45, 5.0, 0.11);
    t[7] = fill(Node::n10, 10.0, 0.75, 360.0, 0.70, 0.40, 6.0, 0.09);
    return t;
  }();
  return rows;
}

const NodeRow& row(Node node) {
  for (const NodeRow& r : node_table())
    if (r.node == node) return r;
  throw InvalidParameter("tech: unknown node");
}

std::size_t node_index(Node node) {
  const auto& t = node_table();
  for (std::size_t i = 0; i < t.size(); ++i)
    if (t[i].node == node) return i;
  throw InvalidParameter("tech: unknown node");
}

}  // namespace

double node_nm(Node node) { return row(node).nm; }

const char* node_name(Node node) {
  switch (node) {
    case Node::n130: return "130nm";
    case Node::n90: return "90nm";
    case Node::n65: return "65nm";
    case Node::n45: return "45nm";
    case Node::n32: return "32nm";
    case Node::n22: return "22nm";
    case Node::n14: return "14nm";
    case Node::n10: return "10nm";
  }
  return "?";
}

Node node_from_string(const std::string& name) {
  std::string digits;
  for (char ch : name)
    if (ch >= '0' && ch <= '9') digits.push_back(ch);
  require(!digits.empty(), "tech: unparseable node name '" + name + "'");
  const int nm = std::stoi(digits);
  switch (nm) {
    case 130: return Node::n130;
    case 90: return Node::n90;
    case 65: return Node::n65;
    case 45: return Node::n45;
    case 32: return Node::n32;
    case 22: return Node::n22;
    case 14: return Node::n14;
    case 10: return Node::n10;
    default: throw InvalidParameter("tech: node '" + name + "' not in database");
  }
}

const SwitchTech& switch_tech(Node node, DeviceClass cls) {
  const NodeRow& r = row(node);
  return cls == DeviceClass::Core ? r.core : r.io;
}

const char* cap_kind_name(CapKind kind) {
  switch (kind) {
    case CapKind::MosCap: return "MOS";
    case CapKind::Mim: return "MIM";
    case CapKind::DeepTrench: return "deep-trench";
  }
  return "?";
}

namespace {

CapacitorTech make_capacitor_tech(Node node, CapKind kind) {
  // MOS cap density grows as gate oxide thins; deep-trench (embedded DRAM
  // style, per Chang [VLSI'10]) gives ~10-20x MOS density at ~1% bottom plate.
  static const double mos_density_nf_mm2[] = {4.0, 5.0, 6.5, 8.0, 10.0, 12.0, 14.0, 16.0};
  static const double mos_leak_a_f[] = {2e-5, 5e-5, 1e-4, 3e-4, 5e-4, 6e-4, 7e-4, 8e-4};
  // Deep-trench (embedded-DRAM) density: published parts span ~100 nF/mm^2
  // (45 nm era, Chang/Sturcken) up past 500 nF/mm^2 on recent nodes.
  static const double trench_density_nf_mm2[] = {100.0, 140.0, 190.0, 250.0,
                                                 325.0, 400.0, 475.0, 550.0};

  const std::size_t i = node_index(node);
  const NodeRow& r = row(node);

  switch (kind) {
    case CapKind::MosCap:
      return CapacitorTech{mos_density_nf_mm2[i] * nf_per_mm2, 0.06, mos_leak_a_f[i],
                           50e-12,  // ohm*F: ~50 mohm for 1 nF
                           r.core.vmax_v};
    case CapKind::Mim:
      return CapacitorTech{2.0 * nf_per_mm2, 0.015, 1e-7, 20e-12, 3.6};
    case CapKind::DeepTrench:
      return CapacitorTech{trench_density_nf_mm2[i] * nf_per_mm2, 0.01, 1e-6, 100e-12,
                           r.core.vmax_v * 1.5};
  }
  throw InvalidParameter("tech: unknown capacitor kind");
}

}  // namespace

const CapacitorTech& capacitor_tech(Node node, CapKind kind) {
  constexpr std::size_t n_kinds = 3;
  require(static_cast<std::size_t>(kind) < n_kinds, "tech: unknown capacitor kind");
  // The full (node x kind) table is built once, on first use, under the
  // magic-static lock; afterwards lookups are lock-free reads.
  static const std::array<std::array<CapacitorTech, n_kinds>, 8> table = [] {
    std::array<std::array<CapacitorTech, n_kinds>, 8> t{};
    for (std::size_t ni = 0; ni < t.size(); ++ni)
      for (std::size_t ki = 0; ki < n_kinds; ++ki)
        t[ni][ki] = make_capacitor_tech(node_table()[ni].node, static_cast<CapKind>(ki));
    return t;
  }();
  return table[node_index(node)][static_cast<std::size_t>(kind)];
}

const char* inductor_kind_name(InductorKind kind) {
  switch (kind) {
    case InductorKind::SurfaceMount: return "surface-mount";
    case InductorKind::IntegratedInterposer: return "2.5D-interposer";
    case InductorKind::MagneticFilm: return "magnetic-film";
  }
  return "?";
}

double InductorTech::inductance_at(double l0_h, double f_hz) const {
  require(l0_h > 0.0, "InductorTech: inductance must be positive");
  require(f_hz > 0.0, "InductorTech: frequency must be positive");
  if (f_hz <= f_knee_hz) return l0_h;
  const double x = std::log10(f_hz / f_knee_hz);
  const double mult = std::clamp(rolloff(x), rolloff_floor, 1.0);
  return l0_h * mult;
}

const InductorTech& inductor_tech(InductorKind kind) {
  // Rolloff polynomial fitted to published L(f) curves: gentle loss in the
  // first decade above the knee, steeper in the second (eddy/skin effects in
  // magnetic material), clamped at a floor (air-core residual inductance).
  static const Polynomial kRolloff({1.0, -0.18, -0.12});

  // DCR per henry follows published parts: ~1 mohm/nH for discrete SMT
  // power inductors, ~5 mohm/nH for interposer coupled-magnetic inductors
  // (Sturcken: 26.5 nH at ~100 mohm class), ~20 mohm/nH for on-die
  // magnetic-film spirals (Gardner).
  static const InductorTech surface_mount{100.0 * nh_per_mm2, 1.0e6, 5e6, false, kRolloff, 0.8};
  static const InductorTech interposer{20.0 * nh_per_mm2, 5.0e6, 5e7, false, kRolloff, 0.5};
  static const InductorTech magnetic_film{50.0 * nh_per_mm2, 2.0e7, 1e8, true, kRolloff, 0.35};

  switch (kind) {
    case InductorKind::SurfaceMount: return surface_mount;
    case InductorKind::IntegratedInterposer: return interposer;
    case InductorKind::MagneticFilm: return magnetic_film;
  }
  throw InvalidParameter("tech: unknown inductor kind");
}

}  // namespace ivory::tech
