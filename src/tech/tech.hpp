// Technology database: CMOS switches, capacitors, and inductors.
//
// Ivory ships a "comprehensively-compiled database containing MOSFET and
// capacitor data from 130 nm down to 10 nm, based on ITRS and PTM models, as
// well as surface-mounted-inductor and integrated-inductor data" (paper
// Section 3.1). The numbers compiled here follow the same published scaling
// trends (see DESIGN.md, substitutions table): on-resistance x width stays
// within a 2x band across nodes while gate capacitance per width shrinks,
// MOS-capacitor density grows roughly with 1/L_gate, and deep-trench
// capacitors add an order of magnitude of density at low bottom-plate
// parasitics.
//
// Conventions: SI units throughout. "Per width" quantities are per metre of
// gate width; callers usually work in ohm*um and fF/um, which the accessors
// below also expose for readability.
#pragma once

#include <string>

#include "common/polynomial.hpp"

namespace ivory::tech {

/// Process nodes covered by the built-in database.
enum class Node { n130, n90, n65, n45, n32, n22, n14, n10 };

/// Feature size in nanometres.
double node_nm(Node node);

/// Parses "45" / "45nm" style strings; throws InvalidParameter on unknown
/// nodes.
Node node_from_string(const std::string& name);

const char* node_name(Node node);

/// Device flavour: thin-oxide core devices vs. thick-oxide IO devices that
/// tolerate the 3.3 V board input directly.
enum class DeviceClass { Core, Io };

/// Power-switch (MOSFET) parameters for one node and device class.
struct SwitchTech {
  double vdd_nom_v;        ///< Nominal gate drive / core supply [V].
  double vmax_v;           ///< Maximum tolerable terminal voltage [V].
  double ron_w_ohm_m;      ///< On-resistance x width [ohm * m].
  double cgate_per_w_f_m;  ///< Gate capacitance per width [F/m].
  double cdrain_per_w_f_m; ///< Drain/source junction capacitance per width [F/m].
  double ileak_per_w_a_m;  ///< Off-state leakage per width [A/m].
  double area_per_w_m;     ///< Layout pitch: die area per width [m^2/m].

  /// On resistance of a switch of width `w_m` metres [ohm].
  double ron(double w_m) const { return ron_w_ohm_m / w_m; }
  /// Gate capacitance of a switch of width `w_m` [F].
  double cgate(double w_m) const { return cgate_per_w_f_m * w_m; }
  double cdrain(double w_m) const { return cdrain_per_w_f_m * w_m; }
  double leakage(double w_m) const { return ileak_per_w_a_m * w_m; }
  double area(double w_m) const { return area_per_w_m * w_m; }

  /// Figure of merit Ron * Cgate [s] — drives the achievable switching
  /// frequency at a given conduction loss.
  double fom_s() const { return ron_w_ohm_m * cgate_per_w_f_m; }
};

const SwitchTech& switch_tech(Node node, DeviceClass cls);

/// On-die (or on-package) capacitor technologies.
enum class CapKind { MosCap, Mim, DeepTrench };

const char* cap_kind_name(CapKind kind);

struct CapacitorTech {
  double density_f_m2;       ///< Capacitance per die area [F/m^2].
  double bottom_plate_ratio; ///< Parasitic bottom-plate cap / main cap.
  double leak_a_per_f;       ///< Leakage current per farad at nominal bias [A/F].
  double esr_ohm_f;          ///< Effective series resistance x capacitance [ohm * F].
  double vmax_v;             ///< Voltage rating [V].

  double area(double c_f) const { return c_f / density_f_m2; }
  double esr(double c_f) const { return esr_ohm_f / c_f; }
};

/// Capacitor parameters for one node and kind. Returns a reference into a
/// table memoized on first use (the sweep engines query the same few
/// combinations millions of times); safe for concurrent readers.
const CapacitorTech& capacitor_tech(Node node, CapKind kind);

/// Inductor technologies: discrete surface-mount parts, inductors integrated
/// on a silicon interposer (2.5D, Sturcken-style coupled magnetic core), and
/// on-die magnetic-film inductors (Gardner-style).
enum class InductorKind { SurfaceMount, IntegratedInterposer, MagneticFilm };

const char* inductor_kind_name(InductorKind kind);

struct InductorTech {
  double density_h_m2;   ///< Inductance per area [H/m^2].
  double dcr_ohm_per_h;  ///< DC resistance per henry [ohm/H].
  double f_knee_hz;      ///< Frequency where inductance starts to roll off.
  bool on_die;           ///< Consumes die area (true) or board/package area.
  /// Polynomial in x = log10(f / f_knee) giving the inductance multiplier
  /// for f > f_knee; clamped to [floor, 1].
  Polynomial rolloff;
  double rolloff_floor;  ///< Lowest inductance multiplier at high frequency.

  /// Effective inductance of a DC value l0 at frequency f (paper:
  /// "polynomial-fitted frequency-dependent coefficient of the inductance").
  double inductance_at(double l0_h, double f_hz) const;
  /// Series resistance of an inductor of DC value l0 [ohm].
  double dcr(double l0_h) const { return dcr_ohm_per_h * l0_h; }
  double area(double l0_h) const { return l0_h / density_h_m2; }
};

const InductorTech& inductor_tech(InductorKind kind);

/// All nodes in the database, largest feature size first.
constexpr Node kAllNodes[] = {Node::n130, Node::n90, Node::n65, Node::n45,
                              Node::n32,  Node::n22, Node::n14, Node::n10};

}  // namespace ivory::tech
