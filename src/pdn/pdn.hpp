// Power-delivery-network (PDN) models: off-chip VRM, board/package RLC
// ladder, C4 bump array, and the on-chip grid.
//
// The PDS of Fig. 1 in the paper is: Vsrc -> off-chip VRM -> board PDN ->
// package PDN -> C4 bumps -> on-chip grid (-> IVRs) -> cores. This module
// provides (a) parameter sets for each stage (defaults follow the GPUVolt
// equivalent circuit the case study uses), (b) a closed-form input impedance
// Z(jw) seen from the die, (c) a netlist builder that emits the same ladder
// into an ivory_spice Circuit for transient/AC cross-checks, and (d) a fast
// dedicated transient solver for ladder + load-current traces.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "spice/circuit.hpp"

namespace ivory::pdn {

/// One series-RL stage of the ladder with a shunt decoupling capacitor
/// (C + ESR) hanging off its downstream node.
struct LadderStage {
  double r_ohm;
  double l_h;
  double decap_f;
  double decap_esr_ohm;
};

struct PdnParams {
  LadderStage board;    ///< PCB spreading + bulk capacitors.
  LadderStage package;  ///< Package planes + package caps.
  LadderStage c4;       ///< Bump array (decap field lives on-die).
  double grid_r_ohm;    ///< On-chip grid effective series resistance.
  double grid_l_h;      ///< On-chip grid effective inductance.
  double ondie_decap_f;
  double ondie_decap_esr_ohm;

  /// Values matching the GPUVolt-style equivalent circuit used by the
  /// paper's GPU case study (board-level 3.3 V supply, four-SM die).
  static PdnParams gpuvolt_default();

  /// Effective parameters when the die is split into `n` independent power
  /// domains: each domain sees the full board/package (shared, scaled by the
  /// per-domain current share) but only a 1/n slice of grid and decap.
  PdnParams per_domain(int n) const;
};

/// Impedance seen from the die looking back toward the VRM (VRM modeled as
/// ideal at DC: short). Closed form; cross-checked against spice AC analysis
/// in the tests.
std::complex<double> input_impedance(const PdnParams& p, double f_hz);

/// Peak of |Z| over a log frequency sweep (the classic PDN resonance).
/// A coarse log-grid scan locates the resonance cell; a golden-section
/// polish inside that cell then refines it, so small `n_pts` no longer
/// aliases the board/package resonance.
struct ImpedancePeak {
  double f_hz;
  double z_ohm;
};
ImpedancePeak find_impedance_peak(const PdnParams& p, double f_lo, double f_hi, int n_pts = 400);

/// Adds the ladder to `c`. Returns the die-side node; the VRM side is driven
/// by an ideal source of `v_supply`.
struct PdnNodes {
  spice::NodeId vrm;
  spice::NodeId die;
};
PdnNodes build_pdn_netlist(spice::Circuit& c, const PdnParams& p, double v_supply);

/// Parameterized N x M on-chip power-grid netlist. Tiles form a regular
/// resistive mesh (`seg_r_ohm` per segment) with a decoupling capacitor and a
/// DC load current source per tile. C4/bump boundary conditions: every
/// `bump_pitch`-th tile in each direction carries a bump — an ideal supply
/// behind the bump resistance (and optional bump inductance). A central
/// block of tiles adds a step load (`step_load_a`, starting at `step_t0_s`)
/// on top of the quiescent draw, the stimulus for droop studies. All bump
/// attachments are per-bump (no shared supply hub node), so the stamped MNA
/// pattern stays local and the grid remains near-banded under RCM — the
/// structure the banded kernel is built for.
struct GridParams {
  int nx = 8;                     ///< Tiles in x.
  int ny = 8;                     ///< Tiles in y.
  double vdd_v = 1.0;
  double seg_r_ohm = 0.05;        ///< Mesh segment resistance.
  double tile_cap_f = 50e-12;     ///< Per-tile decap (to ground).
  double tile_load_a = 0.01;      ///< Quiescent per-tile load.
  double step_load_a = 0.10;      ///< Extra step load per center-block tile.
  double step_t0_s = 2e-9;        ///< Step-load start time.
  double step_rise_s = 2e-10;     ///< Step-load rise time.
  int bump_pitch = 4;             ///< Bump every `bump_pitch` tiles each way.
  double bump_r_ohm = 0.02;
  double bump_l_h = 0.0;          ///< Optional bump inductance (0 = off).
};

struct GridNodes {
  int nx = 0, ny = 0;
  std::vector<spice::NodeId> tiles;  ///< tiles[y * nx + x].
  std::vector<spice::NodeId> bumps;  ///< Bump-side supply nodes.
  spice::NodeId center = 0;          ///< Center tile (droop observation point).

  spice::NodeId tile(int x, int y) const {
    return tiles[static_cast<std::size_t>(y) * static_cast<std::size_t>(nx) +
                 static_cast<std::size_t>(x)];
  }
};

/// Adds the grid to `c`; returns the tile/bump node map.
GridNodes build_grid_netlist(spice::Circuit& c, const GridParams& p);

/// Convenience: a Circuit holding just the grid (tests and benches).
spice::Circuit make_grid_circuit(const GridParams& p);

/// Fast dedicated transient: die voltage response to a load-current trace
/// i_load[k] sampled at dt, supply held at v_supply. Uses trapezoidal
/// integration on the ladder state (validated against ivory_spice).
std::vector<double> simulate_die_voltage(const PdnParams& p, double v_supply,
                                         const std::vector<double>& i_load, double dt);

/// Rated-current headroom used when sizing a board VRM for a given load: the
/// part is picked to carry `kVrmRatingFactor` x the nominal current so that
/// transients and derating do not push it into its loss knee. Shared by the
/// scenario engine's off-chip delivery paths and the DSE funnel's hybrid
/// (split IVR/VRM) candidates.
inline constexpr double kVrmRatingFactor = 2.5;

/// Off-chip voltage-regulator-module model: conversion efficiency versus load,
/// eta(i) = p_out / (p_out + p_fixed + r_loss * i^2 + v_drop * i).
struct VrmModel {
  double vout_v;
  double p_fixed_w;    ///< Gate drive + controller, load independent.
  double r_loss_ohm;   ///< Lumped conduction loss coefficient.
  double v_drop_v;     ///< Switching-loss coefficient expressed as a drop.

  /// Efficiency at output current `i_a` (0 < eta < 1; throws on i <= 0).
  double efficiency(double i_a) const;
  /// Input power required to deliver `p_out_w`.
  double input_power(double p_out_w) const;

  /// A 12 V -> `vout` board VRM with parameters tuned so that peak
  /// efficiency lands near the published ~90% (high vout) / ~85% (1 V-class
  /// output at tens of amps) figures.
  static VrmModel board_vrm(double vout_v, double i_rated_a);
};

}  // namespace ivory::pdn
