#include "pdn/pdn.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/units.hpp"
#include "spice/analysis.hpp"

namespace ivory::pdn {

PdnParams PdnParams::gpuvolt_default() {
  // Ladder values follow the published equivalent circuits used by GPUVolt /
  // Kim et al. (HPCA'08) scaled to an embedded four-SM GPU: first droop
  // resonance lands in the tens of MHz with a peak impedance of a few
  // milliohms, which produces the ~100 mV-class noise the paper reports for
  // the off-chip-VRM configuration at ~20 A load swings.
  PdnParams p;
  p.board = {0.4e-3, 20e-12, 240e-6, 0.2e-3};
  p.package = {0.5e-3, 10e-12, 26e-6, 0.5e-3};
  p.c4 = {0.1e-3, 1e-12, 10e-9, 1e-3};
  // On-chip distribution from the regulation point to the cores: an embedded
  // GPU's grid is sparser than a server CPU's, and this span is exactly what
  // distributed IVRs shorten (the cen-vs-distributed noise lever in Fig. 11).
  p.grid_r_ohm = 2.0e-3;
  p.grid_l_h = 12e-12;
  p.ondie_decap_f = 500e-9;
  p.ondie_decap_esr_ohm = 0.5e-3;
  return p;
}

PdnParams PdnParams::per_domain(int n) const {
  require(n >= 1, "PdnParams::per_domain: need n >= 1");
  // Symmetric slice: the shared board/package/C4 network splits into n
  // parallel copies with impedance x n and decap / n (exact for symmetric
  // domains). The on-chip grid between the regulation point and the domain's
  // load shortens as domains localize: the x n slice narrowing and the 1/n
  // path shortening cancel, leaving the total grid values per domain.
  PdnParams p = *this;
  const double nf = static_cast<double>(n);
  auto scale_stage = [nf](LadderStage& s) {
    s.r_ohm *= nf;
    s.l_h *= nf;
    s.decap_f /= nf;
    s.decap_esr_ohm *= nf;
  };
  scale_stage(p.board);
  scale_stage(p.package);
  scale_stage(p.c4);
  // Grid slice: width/n (x n per square) but length/n (local path) -> total
  // unchanged; decap splits.
  p.ondie_decap_f /= nf;
  p.ondie_decap_esr_ohm *= nf;
  return p;
}

namespace {

using C = std::complex<double>;

C shunt_impedance(double c_f, double esr_ohm, double w) {
  if (c_f <= 0.0) return C(1e18, 0.0);  // No decap: open.
  return C(esr_ohm, 0.0) + C(0.0, -1.0 / (w * c_f));
}

C parallel(C a, C b) { return a * b / (a + b); }

}  // namespace

std::complex<double> input_impedance(const PdnParams& p, double f_hz) {
  require(f_hz > 0.0, "input_impedance: frequency must be positive");
  const double w = 2.0 * pi * f_hz;
  // From the VRM (ideal: 0 ohm) outward toward the die.
  C z = C(fault::inject("pdn_transfer"), 0.0);
  for (const LadderStage* s : {&p.board, &p.package, &p.c4}) {
    z += C(s->r_ohm, w * s->l_h);
    z = parallel(z, shunt_impedance(s->decap_f, s->decap_esr_ohm, w));
  }
  z += C(p.grid_r_ohm, w * p.grid_l_h);
  z = parallel(z, shunt_impedance(p.ondie_decap_f, p.ondie_decap_esr_ohm, w));
  return check_finite(z, "input_impedance: PDN transfer");
}

ImpedancePeak find_impedance_peak(const PdnParams& p, double f_lo, double f_hi, int n_pts) {
  require(f_lo > 0.0 && f_hi > f_lo, "find_impedance_peak: need 0 < f_lo < f_hi");
  require(n_pts >= 2, "find_impedance_peak: need at least 2 points");
  const double llo = std::log10(f_lo), lhi = std::log10(f_hi);
  const auto grid = [&](int i) { return llo + (lhi - llo) * i / (n_pts - 1); };
  const auto z_at = [&](double lf) {
    return std::abs(input_impedance(p, std::pow(10.0, lf)));
  };

  int best_i = 0;
  double best_z = z_at(grid(0));
  for (int i = 1; i < n_pts; ++i) {
    const double z = z_at(grid(i));
    if (z > best_z) {
      best_i = i;
      best_z = z;
    }
  }

  // Golden-section polish in log-frequency between the neighbours of the best
  // grid point. The coarse grid only locates a resonance to within one cell;
  // |Z| is smooth and unimodal inside that bracket, so the search recovers
  // the true peak without re-sweeping at a denser resolution.
  double a = grid(std::max(best_i - 1, 0));
  double b = grid(std::min(best_i + 1, n_pts - 1));
  constexpr double kInvPhi = 0.6180339887498949;
  double x1 = b - kInvPhi * (b - a), x2 = a + kInvPhi * (b - a);
  double z1 = z_at(x1), z2 = z_at(x2);
  while (b - a > 1e-10) {
    if (z1 < z2) {
      a = x1;
      x1 = x2;
      z1 = z2;
      x2 = a + kInvPhi * (b - a);
      z2 = z_at(x2);
    } else {
      b = x2;
      x2 = x1;
      z2 = z1;
      x1 = b - kInvPhi * (b - a);
      z1 = z_at(x1);
    }
  }
  const double lf = 0.5 * (a + b);
  const double z = z_at(lf);
  // A multi-modal bracket (two resonances inside one grid cell) could in
  // principle converge to the lesser peak; never answer worse than the scan.
  if (z < best_z) return {std::pow(10.0, grid(best_i)), best_z};
  return {std::pow(10.0, lf), z};
}

PdnNodes build_pdn_netlist(spice::Circuit& c, const PdnParams& p, double v_supply) {
  using spice::kGround;
  const spice::NodeId vrm = c.node("vrm");
  c.add_vsource("vvrm", vrm, kGround, spice::Waveform::dc(v_supply));

  spice::NodeId prev = vrm;
  int idx = 0;
  auto add_stage = [&](const LadderStage& s, const std::string& tag) {
    const spice::NodeId mid = c.node(tag + "_rl");
    const spice::NodeId out = c.node(tag);
    c.add_resistor("r_" + tag, prev, mid, s.r_ohm);
    c.add_inductor("l_" + tag, mid, out, s.l_h);
    if (s.decap_f > 0.0) {
      const spice::NodeId dk = c.node(tag + "_decap");
      c.add_resistor("resr_" + tag, out, dk, std::max(s.decap_esr_ohm, 1e-9));
      c.add_capacitor("c_" + tag, dk, kGround, s.decap_f);
    }
    prev = out;
    ++idx;
  };
  add_stage(p.board, "board");
  add_stage(p.package, "pkg");
  add_stage(p.c4, "c4");

  const spice::NodeId gmid = c.node("grid_rl");
  const spice::NodeId die = c.node("die");
  c.add_resistor("r_grid", prev, gmid, p.grid_r_ohm);
  c.add_inductor("l_grid", gmid, die, p.grid_l_h);
  const spice::NodeId dk = c.node("die_decap");
  c.add_resistor("resr_die", die, dk, std::max(p.ondie_decap_esr_ohm, 1e-9));
  c.add_capacitor("c_die", dk, kGround, p.ondie_decap_f);
  return {vrm, die};
}

std::vector<double> simulate_die_voltage(const PdnParams& p, double v_supply,
                                         const std::vector<double>& i_load, double dt) {
  require(i_load.size() >= 2, "simulate_die_voltage: need at least two samples");
  require(dt > 0.0, "simulate_die_voltage: dt must be positive");

  spice::Circuit c;
  const PdnNodes nodes = build_pdn_netlist(c, p, v_supply);
  // Zero-order-hold playback of the sampled load current.
  const std::vector<double> samples = i_load;
  c.add_isource("iload", nodes.die, spice::kGround,
                spice::Waveform::custom([samples, dt](double t) {
                  const double k = t / dt;
                  const std::size_t i =
                      std::min(static_cast<std::size_t>(std::max(k, 0.0)), samples.size() - 1);
                  return samples[i];
                }));

  spice::TranSpec spec;
  spec.tstop = static_cast<double>(i_load.size() - 1) * dt;
  spec.dt = dt;
  spec.record_nodes = {nodes.die};
  const spice::TranResult res = spice::transient(c, spec);
  return check_finite(res.at(nodes.die), "simulate_die_voltage: die voltage trace");
}

GridNodes build_grid_netlist(spice::Circuit& c, const GridParams& p) {
  require(p.nx >= 2 && p.ny >= 2, "build_grid_netlist: grid must be at least 2x2");
  require(p.bump_pitch >= 1, "build_grid_netlist: bump_pitch must be >= 1");
  require(p.seg_r_ohm > 0.0, "build_grid_netlist: seg_r_ohm must be positive");
  require(p.bump_r_ohm > 0.0, "build_grid_netlist: bump_r_ohm must be positive");
  require(p.tile_cap_f > 0.0, "build_grid_netlist: tile_cap_f must be positive");
  require(p.vdd_v > 0.0, "build_grid_netlist: vdd_v must be positive");

  const spice::NodeId gnd = spice::kGround;
  GridNodes out;
  out.nx = p.nx;
  out.ny = p.ny;
  out.tiles.reserve(static_cast<std::size_t>(p.nx) * static_cast<std::size_t>(p.ny));
  for (int y = 0; y < p.ny; ++y)
    for (int x = 0; x < p.nx; ++x)
      out.tiles.push_back(c.node("g" + std::to_string(x) + "_" + std::to_string(y)));
  out.center = out.tile(p.nx / 2, p.ny / 2);

  // Mesh segments.
  for (int y = 0; y < p.ny; ++y)
    for (int x = 0; x < p.nx; ++x) {
      const std::string sfx = std::to_string(x) + "_" + std::to_string(y);
      if (x + 1 < p.nx)
        c.add_resistor("rh" + sfx, out.tile(x, y), out.tile(x + 1, y), p.seg_r_ohm);
      if (y + 1 < p.ny)
        c.add_resistor("rv" + sfx, out.tile(x, y), out.tile(x, y + 1), p.seg_r_ohm);
    }

  // Per-tile decap and load. The central quarter block additionally draws a
  // step load — the droop stimulus.
  const int x0 = p.nx / 4, x1 = p.nx - p.nx / 4;
  const int y0 = p.ny / 4, y1 = p.ny - p.ny / 4;
  for (int y = 0; y < p.ny; ++y)
    for (int x = 0; x < p.nx; ++x) {
      const std::string sfx = std::to_string(x) + "_" + std::to_string(y);
      const spice::NodeId n = out.tile(x, y);
      c.add_capacitor("cd" + sfx, n, gnd, p.tile_cap_f);
      if (p.tile_load_a > 0.0)
        c.add_isource("il" + sfx, n, gnd, spice::Waveform::dc(p.tile_load_a));
      if (p.step_load_a > 0.0 && x >= x0 && x < x1 && y >= y0 && y < y1)
        c.add_isource("is" + sfx, n, gnd,
                      spice::Waveform::pulse(0.0, p.step_load_a, p.step_t0_s, p.step_rise_s,
                                             p.step_rise_s, 1.0, 2.0));
    }

  // C4 bumps: per-bump ideal supply behind the bump resistance (and optional
  // inductance). No shared supply hub — each attachment is local, keeping the
  // stamped pattern near-banded under RCM.
  for (int y = 0; y < p.ny; y += p.bump_pitch)
    for (int x = 0; x < p.nx; x += p.bump_pitch) {
      const std::string sfx = std::to_string(x) + "_" + std::to_string(y);
      const spice::NodeId b = c.node("bump" + sfx);
      out.bumps.push_back(b);
      c.add_vsource("vb" + sfx, b, gnd, spice::Waveform::dc(p.vdd_v));
      if (p.bump_l_h > 0.0) {
        const spice::NodeId bl = c.node("bumpl" + sfx);
        c.add_inductor("lb" + sfx, b, bl, p.bump_l_h);
        c.add_resistor("rb" + sfx, bl, out.tile(x, y), p.bump_r_ohm);
      } else {
        c.add_resistor("rb" + sfx, b, out.tile(x, y), p.bump_r_ohm);
      }
    }
  return out;
}

spice::Circuit make_grid_circuit(const GridParams& p) {
  spice::Circuit c;
  build_grid_netlist(c, p);
  return c;
}

double VrmModel::efficiency(double i_a) const {
  require(i_a > 0.0, "VrmModel::efficiency: current must be positive");
  const double p_out = vout_v * i_a;
  return p_out / (p_out + p_fixed_w + r_loss_ohm * i_a * i_a + v_drop_v * i_a);
}

double VrmModel::input_power(double p_out_w) const {
  require(p_out_w > 0.0, "VrmModel::input_power: power must be positive");
  return p_out_w / efficiency(p_out_w / vout_v);
}

VrmModel VrmModel::board_vrm(double vout_v, double i_rated_a) {
  require(vout_v > 0.0 && i_rated_a > 0.0, "VrmModel::board_vrm: invalid rating");
  // Peak efficiency improves with output voltage (lower conversion ratio,
  // lower current for the same power): ~86% for 1 V-class rails, ~92% at 3.3 V.
  const double eta_peak = std::min(0.92, 0.84 + 0.025 * vout_v);
  const double loss_rated = vout_v * i_rated_a * (1.0 - eta_peak) / eta_peak;
  VrmModel m;
  m.vout_v = vout_v;
  m.p_fixed_w = 0.20 * loss_rated;
  m.r_loss_ohm = 0.50 * loss_rated / (i_rated_a * i_rated_a);
  m.v_drop_v = 0.30 * loss_rated / i_rated_a;
  return m;
}

}  // namespace ivory::pdn
